"""Integration tests: theory vs simulation, end-to-end pipelines.

These tests exercise the full pipeline the paper relies on — derive a
market's queueing-network model from its protocol-level description, then
check that the transaction-level simulation actually converges toward the
analytical predictions.
"""

import numpy as np
import pytest

from repro.core import CreditMarket, UniformPricing, gini_index
from repro.core.condensation import grand_canonical_wealth
from repro.overlay import ring_topology, scale_free_topology
from repro.p2psim import (
    CreditMarketSimulator,
    MarketSimConfig,
    StreamingMarketSimulator,
    StreamingSimConfig,
    UtilizationMode,
)
from repro.queueing import ClosedJacksonNetwork, RoutingMatrix, solve_traffic_equations


class TestMarketToQueueingPipeline:
    def test_streaming_market_predicts_no_condensation(self):
        """Sec. V-C case 1: uniform pricing + streaming demand => healthy market.

        The paper's symmetric-utilization argument assumes peers are
        interchangeable (as on a complete or regular overlay); on a
        random-regular overlay the prediction holds exactly.
        """
        from repro.overlay import random_regular_topology

        topology = random_regular_topology(120, degree=10, seed=1)
        market = CreditMarket(topology, initial_credits=50.0, pricing=UniformPricing(1.0))
        equilibrium = market.equilibrium()
        assert not equilibrium.condensation.condenses
        network = market.to_queueing_network()
        # Expected wealth is spread evenly (symmetric utilization).
        assert network.expected_wealth_gini() < 0.05

    def test_scale_free_overlay_creates_condensation_risk(self):
        """On a scale-free overlay, degree heterogeneity skews utilizations
        and the condensation threshold drops far below typical endowments."""
        topology = scale_free_topology(120, seed=1)
        market = CreditMarket(topology, initial_credits=50.0, pricing=UniformPricing(1.0))
        report = market.equilibrium().condensation
        assert not report.symmetric
        assert report.threshold < 50.0
        assert report.condenses

    def test_gini_prediction_consistent_with_grand_canonical(self):
        topology = scale_free_topology(60, mean_degree=8, seed=2)
        market = CreditMarket(
            topology,
            initial_credits=10.0,
            spending_rates={peer: 1.0 for peer in topology.peers()},
        )
        equilibrium = market.equilibrium()
        exact = market.to_queueing_network().mean_queue_lengths()
        approx = grand_canonical_wealth(equilibrium.utilizations, market.total_credits)
        # The grand-canonical approximation tracks the exact expected wealth
        # profile closely in aggregate.
        assert gini_index(exact) == pytest.approx(gini_index(approx), abs=0.1)


class TestSimulationMatchesTheory:
    def test_symmetric_market_sim_converges_to_product_form_gini(self):
        """A perfectly symmetric market converges to the Bose-Einstein equilibrium."""
        config = MarketSimConfig(
            num_peers=80,
            initial_credits=10.0,
            horizon=1500.0,
            step=2.0,
            utilization=UtilizationMode.SYMMETRIC,
            topology_mean_degree=10.0,
            sample_interval=100.0,
            seed=5,
        )
        result = CreditMarketSimulator.run_config(config)
        # Analytical equilibrium: uniform composition of M credits over N peers.
        network = ClosedJacksonNetwork([1.0] * 80, 800)
        samples = network.sample_occupancy(rng=np.random.default_rng(0), num_samples=40)
        predicted_gini = float(np.mean([gini_index(sample.astype(float)) for sample in samples]))
        assert result.stabilized_gini == pytest.approx(predicted_gini, abs=0.12)

    def test_two_queue_market_matches_closed_network_means(self):
        """A tiny asymmetric market's long-run wealth split matches the Jackson model."""
        # Ring of 4 peers with heterogeneous spending rates.
        topology = ring_topology(4)
        spending = {0: 2.0, 1: 1.0, 2: 2.0, 3: 1.0}
        routing = RoutingMatrix.uniform_over_neighbors(topology)
        lam = solve_traffic_equations(routing).arrival_rates
        utilizations = (lam / np.array([spending[i] for i in range(4)]))
        network = ClosedJacksonNetwork(utilizations, 4 * 25)
        predicted = network.mean_queue_lengths()

        config = MarketSimConfig(
            num_peers=4,
            initial_credits=25.0,
            horizon=4000.0,
            step=1.0,
            topology_mean_degree=2.0,
            sample_interval=200.0,
            seed=9,
        )
        simulator = CreditMarketSimulator(config, topology=topology)
        # Override the spending rates to the heterogeneous profile.
        for peer, rate in spending.items():
            simulator._base_mu[simulator._slot_of[peer]] = rate
        result = simulator.run()
        measured = result.final_wealths
        # Peers with the lower spending rate hold more credits, as predicted.
        assert (measured[1] + measured[3]) > (measured[0] + measured[2])
        assert (predicted[1] + predicted[3]) > (predicted[0] + predicted[2])

    def test_exchange_efficiency_throttles_simulated_spending(self):
        """Eq. 9: with tiny average wealth the realised spending rate collapses."""
        rich = CreditMarketSimulator.run_config(
            MarketSimConfig(
                num_peers=60, initial_credits=20.0, horizon=400.0, step=2.0,
                topology_mean_degree=8.0, sample_interval=100.0, seed=3,
            )
        )
        poor = CreditMarketSimulator.run_config(
            MarketSimConfig(
                num_peers=60, initial_credits=0.5, horizon=400.0, step=2.0,
                topology_mean_degree=8.0, sample_interval=100.0, seed=3,
            )
        )
        assert poor.spending_rates.mean() < rich.spending_rates.mean()
        # The rich market spends at nearly the full configured rate of 1/s.
        assert rich.spending_rates.mean() > 0.7


class TestStreamingAndMarketSimulatorsAgree:
    def test_both_simulators_show_condensation_under_heterogeneous_prices(self):
        from repro.core import PerPeerFlatPricing
        from repro.utils.rng import make_rng

        rng = make_rng(7, "integration-prices")
        num_peers = 40
        prices = {peer: 1.0 + float(rng.poisson(1.0)) for peer in range(num_peers)}
        pricing = PerPeerFlatPricing(prices)
        topology = scale_free_topology(num_peers, mean_degree=8, seed=7)

        market_result = CreditMarketSimulator.run_config(
            MarketSimConfig(
                num_peers=num_peers, initial_credits=20.0, horizon=1200.0, step=2.0,
                utilization=UtilizationMode.ASYMMETRIC, pricing=pricing,
                topology_mean_degree=8.0, sample_interval=100.0, seed=7,
            ),
            topology=topology.copy(),
        )
        streaming_result = StreamingMarketSimulator.run_config(
            StreamingSimConfig(
                num_peers=num_peers, initial_credits=20.0, horizon=250.0, pricing=pricing,
                topology_mean_degree=8.0, upload_capacity=1, sample_interval=50.0, seed=7,
            ),
            topology=topology.copy(),
        )
        # Both levels of fidelity agree on the qualitative outcome: wealth
        # becomes substantially skewed under heterogeneous per-seller prices.
        assert market_result.stabilized_gini > 0.3
        assert streaming_result.final_gini > 0.2
