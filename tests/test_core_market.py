"""Tests for the credit market and its Table I mapping onto a queueing network."""

import numpy as np
import pytest

from repro.core import CreditMarket, PerPeerFlatPricing, UniformPricing
from repro.overlay import OverlayTopology, ring_topology, scale_free_topology
from repro.queueing import ClosedJacksonNetwork
from repro.workloads import elastic_chunk_rates, streaming_chunk_rates


class TestConstruction:
    def test_requires_two_peers(self):
        with pytest.raises(ValueError):
            CreditMarket(OverlayTopology([0]), initial_credits=10.0)

    def test_default_market_properties(self):
        topology = ring_topology(6)
        market = CreditMarket(topology, initial_credits=25.0)
        assert market.num_peers == 6
        assert market.total_credits == pytest.approx(150.0)
        assert market.average_wealth == pytest.approx(25.0)
        np.testing.assert_allclose(market.wealth_vector(), 25.0)

    def test_explicit_spending_rates(self):
        topology = ring_topology(4)
        market = CreditMarket(
            topology, initial_credits=10.0, spending_rates={0: 1.0, 1: 2.0, 2: 1.0, 3: 2.0}
        )
        np.testing.assert_allclose(market.spending_rates, [1.0, 2.0, 1.0, 2.0])

    def test_missing_spending_rate_rejected(self):
        topology = ring_topology(4)
        with pytest.raises(ValueError):
            CreditMarket(topology, initial_credits=10.0, spending_rates={0: 1.0})

    def test_chunk_rates_must_follow_topology(self):
        topology = ring_topology(4)
        with pytest.raises(ValueError):
            CreditMarket(topology, initial_credits=10.0, chunk_rates={0: {2: 1.0}})
        with pytest.raises(KeyError):
            CreditMarket(topology, initial_credits=10.0, chunk_rates={0: {9: 1.0}})

    def test_reserve_fraction_on_routing_diagonal(self):
        topology = ring_topology(5)
        market = CreditMarket(topology, initial_credits=10.0, reserve_fraction=0.25)
        np.testing.assert_allclose(market.routing_matrix.self_loop_fractions(), 0.25)


class TestSectionVC:
    """Sec. V-C: mu_i = sum_j r_ji s_j and p_ij proportional to r_ji s_j."""

    def test_uniform_pricing_streaming_rates(self):
        topology = ring_topology(6)
        market = CreditMarket(
            topology,
            initial_credits=10.0,
            pricing=UniformPricing(2.0),
            chunk_rates=streaming_chunk_rates(topology, streaming_rate=1.0),
        )
        # mu_i = s * r = 2.0 for every peer.
        np.testing.assert_allclose(market.spending_rates, 2.0)
        equilibrium = market.equilibrium()
        # Streaming + uniform pricing => symmetric utilization (Sec. V-C case 1).
        np.testing.assert_allclose(equilibrium.utilizations, 1.0, atol=1e-8)
        assert not equilibrium.condensation.condenses

    def test_heterogeneous_prices_shape_rates_and_routing(self):
        # Peer 0 buys from peers 1 (price 3) and 2 (price 1), half its stream each.
        topology = OverlayTopology.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        pricing = PerPeerFlatPricing({0: 1.0, 1: 3.0, 2: 1.0})
        market = CreditMarket(
            topology,
            initial_credits=10.0,
            pricing=pricing,
            chunk_rates=streaming_chunk_rates(topology),
        )
        # mu_0 = 0.5 * 3 + 0.5 * 1 = 2 (Sec. V-C).
        assert market.spending_rates[0] == pytest.approx(2.0)
        routing = market.routing_matrix
        # Credits flow toward the expensive seller in proportion to r * s.
        assert routing.probability(0, 1) == pytest.approx(0.75)
        assert routing.probability(0, 2) == pytest.approx(0.25)

    def test_elastic_demand_creates_asymmetric_utilization(self):
        topology = scale_free_topology(80, mean_degree=8, seed=3)
        market = CreditMarket(
            topology,
            initial_credits=50.0,
            chunk_rates=elastic_chunk_rates(topology, dispersion=1.0, seed=4),
        )
        utilizations = market.equilibrium().utilizations
        assert utilizations.std() > 0.01


class TestEquilibrium:
    def test_lambda_bounded_by_mu(self):
        topology = scale_free_topology(60, mean_degree=8, seed=5)
        market = CreditMarket(topology, initial_credits=20.0)
        equilibrium = market.equilibrium()
        assert np.all(equilibrium.arrival_rates <= equilibrium.service_rates + 1e-9)
        assert equilibrium.traffic_residual < 1e-6

    def test_equilibrium_cached_unless_recomputed(self):
        market = CreditMarket(ring_topology(5), initial_credits=10.0)
        first = market.equilibrium()
        assert market.equilibrium() is first
        assert market.equilibrium(recompute=True) is not first


class TestTableOneMapping:
    def test_to_queueing_network_dimensions(self):
        topology = ring_topology(8)
        market = CreditMarket(topology, initial_credits=5.0)
        network = market.to_queueing_network()
        assert isinstance(network, ClosedJacksonNetwork)
        assert network.num_queues == 8
        assert network.total_jobs == 40
        assert network.average_wealth == pytest.approx(5.0)

    def test_explicit_total_credits(self):
        market = CreditMarket(ring_topology(4), initial_credits=5.0)
        network = market.to_queueing_network(total_credits=100)
        assert network.total_jobs == 100

    def test_mapping_dictionary_is_consistent(self):
        topology = ring_topology(6)
        market = CreditMarket(topology, initial_credits=12.0)
        mapping = market.table_one_mapping()
        assert mapping["num_peers_N"] == mapping["num_queues_N"] == 6
        assert mapping["total_credits_M"] == pytest.approx(72.0)
        assert mapping["total_jobs_M"] == 72
        assert mapping["routing_probabilities_p_ij"].shape == (6, 6)
        np.testing.assert_allclose(mapping["credit_pools_B_i"], 12.0)
        np.testing.assert_allclose(
            mapping["routing_probabilities_p_ij"].sum(axis=1), 1.0
        )

    def test_expected_wealth_conserves_credits(self):
        topology = scale_free_topology(30, mean_degree=6, seed=7)
        market = CreditMarket(topology, initial_credits=4.0)
        network = market.to_queueing_network()
        assert network.mean_queue_lengths().sum() == pytest.approx(120.0, rel=1e-6)

    def test_predicted_statistics(self):
        topology = ring_topology(10)
        market = CreditMarket(topology, initial_credits=3.0)
        gini = market.predicted_gini()
        bankrupt = market.predicted_bankruptcy_fraction()
        assert 0.0 <= gini < 1.0
        assert 0.0 < bankrupt < 1.0
        # Symmetric ring: expected wealths equal, so the expected-wealth Gini is ~0.
        assert gini == pytest.approx(0.0, abs=1e-6)
