"""The unified ExecutionPlan API and its deprecated predecessors.

Satellite contract of the sharding PR: ``ExecutionPlan`` + ``execute``
replace the scattered execution knobs (``run_market_partitioned`` /
``run_streaming_partitioned``, per-call ``intra_jobs``, shard flags); the
legacy wrappers survive as thin deprecated shims with unchanged
semantics; and deprecation warnings — including the PR-9 legacy
``kernel=`` config pass-through — point at the *caller's* line, not at
library internals.
"""

import dataclasses
import warnings

import pytest

from repro.p2psim import (
    CreditMarketSimulator,
    KernelOptions,
    MarketSimConfig,
    StreamingMarketSimulator,
    StreamingSimConfig,
)
from repro.runner import (
    CheckpointStore,
    ExecutionPlan,
    execute,
    run_market_partitioned,
    run_streaming_partitioned,
    run_sweep,
)
from repro.runner.grid import SweepSpec


def market_config(**overrides):
    defaults = dict(
        num_peers=60,
        initial_credits=10.0,
        horizon=200.0,
        step=2.0,
        topology_mean_degree=8.0,
        sample_interval=40.0,
        seed=13,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


def streaming_config(**overrides):
    defaults = dict(
        num_peers=36,
        initial_credits=20.0,
        horizon=100.0,
        topology_mean_degree=8.0,
        sample_interval=25.0,
        seed=17,
    )
    defaults.update(overrides)
    return StreamingSimConfig(**defaults)


def fingerprint(result):
    return (
        result.final_wealths.tobytes(),
        result.spending_rates.tobytes(),
        tuple(result.recorder.gini_series.y),
    )


class TestExecutionPlanValidation:
    def test_defaults_are_inert(self):
        plan = ExecutionPlan()
        assert plan.blocks_for(100) == 1
        assert plan.shard_override_kwargs() == {}

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rounds_per_block=0),
            dict(intra_jobs=0),
            dict(shards=0),
            dict(shards=5000),
            dict(partitioner="metis"),
            dict(shard_backend="gpu"),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPlan(**kwargs)

    def test_options_must_be_kernel_options(self):
        with pytest.raises(TypeError):
            ExecutionPlan(options={"kernel": "loop"})

    def test_blocks_for_prefers_rounds_per_block(self):
        plan = ExecutionPlan(rounds_per_block=30, intra_jobs=8)
        assert plan.blocks_for(100) == 4  # ceil(100 / 30)
        assert ExecutionPlan(intra_jobs=3).blocks_for(100) == 3

    def test_resolved_options_layering(self):
        config = market_config(options=KernelOptions(dtype="float32"))
        resolved = ExecutionPlan(shards=4).resolved_options(config)
        assert resolved.dtype == "float32"  # config options survive
        assert resolved.shards == 4  # plan shard fields win
        wholesale = ExecutionPlan(
            options=KernelOptions(telemetry=False), shards=2
        ).resolved_options(config)
        assert wholesale.telemetry is False
        assert wholesale.shards == 2

    def test_plan_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPlan().intra_jobs = 2


class TestExecuteEquivalence:
    def test_market_plan_variants_byte_identical(self):
        config = market_config()
        baseline = CreditMarketSimulator(config).run()
        for plan in (
            None,
            ExecutionPlan(),
            ExecutionPlan(intra_jobs=3),
            ExecutionPlan(rounds_per_block=25),
            ExecutionPlan(shards=2, shard_backend="serial"),
            ExecutionPlan(rounds_per_block=40, shards=2, shard_backend="serial"),
        ):
            assert fingerprint(execute(config, plan)) == fingerprint(baseline)

    def test_streaming_plan_variants_byte_identical(self):
        config = streaming_config()
        baseline = StreamingMarketSimulator(config).run()
        for plan in (ExecutionPlan(intra_jobs=2), ExecutionPlan(shards=4)):
            assert fingerprint(execute(config, plan)) == fingerprint(baseline)

    def test_execute_rejects_unknown_config(self):
        with pytest.raises(TypeError, match="MarketSimConfig or StreamingSimConfig"):
            execute({"num_peers": 10})

    def test_execute_persists_blocks_into_store(self, tmp_path):
        store = CheckpointStore(tmp_path)
        config = market_config()
        result = execute(config, ExecutionPlan(intra_jobs=2), store=store, scope="t")
        assert fingerprint(result) == fingerprint(CreditMarketSimulator(config).run())
        assert list(tmp_path.iterdir())  # checkpoints actually landed


class TestDeprecatedWrappers:
    def test_market_wrapper_warns_and_matches(self):
        config = market_config()
        with pytest.warns(DeprecationWarning, match="ExecutionPlan"):
            legacy = run_market_partitioned(config, blocks=3)
        assert fingerprint(legacy) == fingerprint(
            execute(config, ExecutionPlan(intra_jobs=3))
        )

    def test_streaming_wrapper_warns_and_matches(self):
        config = streaming_config()
        with pytest.warns(DeprecationWarning, match="ExecutionPlan"):
            legacy = run_streaming_partitioned(config, blocks=2)
        assert fingerprint(legacy) == fingerprint(
            execute(config, ExecutionPlan(intra_jobs=2))
        )

    def test_wrapper_warning_points_at_caller(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_market_partitioned(market_config(), blocks=2)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert deprecations and deprecations[0].filename == __file__


class TestLegacyKernelFieldStacklevel:
    """The PR-9 ``kernel=`` config pass-through must blame the caller."""

    def test_direct_construction_points_here(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            market_config(kernel="loop")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert deprecations and deprecations[0].filename == __file__

    def test_dataclasses_replace_points_here(self):
        config = market_config()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            dataclasses.replace(config, kernel="vectorized")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert deprecations and deprecations[0].filename == __file__

    def test_streaming_construction_points_here(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            streaming_config(kernel="vectorized")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert deprecations and deprecations[0].filename == __file__


class TestRunSweepPlan:
    def test_plan_rejects_modelling_fields(self):
        spec = SweepSpec("fig7", replications=1, scale="smoke")
        with pytest.raises(ValueError, match="plan.options"):
            run_sweep(spec, plan=ExecutionPlan(options=KernelOptions()))
        with pytest.raises(ValueError, match="rounds_per_block"):
            run_sweep(spec, plan=ExecutionPlan(rounds_per_block=10))

    def test_conflicting_intra_jobs_rejected(self):
        spec = SweepSpec("fig7", replications=1, scale="smoke")
        with pytest.raises(ValueError, match="conflicting intra_jobs"):
            run_sweep(spec, intra_jobs=3, plan=ExecutionPlan(intra_jobs=2))

    def test_plan_intra_jobs_drives_report(self):
        spec = SweepSpec("fig7", replications=1, scale="smoke")
        report = run_sweep(spec, plan=ExecutionPlan(intra_jobs=2))
        assert report.intra_jobs == 2
        assert report.plan is not None

    def test_sharded_sweep_shares_cache_keys(self, tmp_path):
        from repro.runner import ArtifactCache

        spec = SweepSpec("fig7", replications=1, scale="smoke")
        cache = ArtifactCache(tmp_path)
        first = run_sweep(
            spec, cache=cache, plan=ExecutionPlan(shards=4, shard_backend="serial")
        )
        assert first.executed == 1
        # A monolithic re-run restores the sharded run's artifact: shard
        # settings never enter the cache key.
        second = run_sweep(spec, cache=cache)
        assert second.executed == 0
        assert second.cached == 1
        assert [s.payload for s in first.shards] == [s.payload for s in second.shards]
