"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.scale == "default"
        assert args.seed == 0
        assert args.csv is None

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig4", "--scale", "huge"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig1", "fig4", "fig11"):
            assert experiment_id in output

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig4", "--scale", "smoke", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4" in output
        assert "efficiency_eq9" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99", "--scale", "smoke"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "fig4.csv"
        assert main(["run", "fig4", "--scale", "smoke", "--csv", str(target)]) == 0
        content = target.read_text()
        assert "average_wealth_c" in content.splitlines()[0]
        assert len(content.splitlines()) > 2
