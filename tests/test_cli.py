"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.scale == "default"
        assert args.seed == 0
        assert args.csv is None

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig4", "--scale", "huge"])

    def test_run_accepts_reps_and_jobs(self):
        args = build_parser().parse_args(["run", "fig4", "--reps", "3", "--jobs", "2"])
        assert args.reps == 3
        assert args.jobs == 2
        assert args.intra_jobs == 1
        assert args.cache_dir is None

    def test_run_and_sweep_accept_intra_jobs(self):
        args = build_parser().parse_args(["run", "fig7", "--intra-jobs", "4"])
        assert args.intra_jobs == 4
        args = build_parser().parse_args(["sweep", "fig7", "--intra-jobs", "2"])
        assert args.intra_jobs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fig11"])
        assert args.target == "fig11"
        assert args.param == []
        assert args.reps == 1
        assert args.jobs == 1

    def test_sweep_collects_repeated_params(self):
        args = build_parser().parse_args(
            ["sweep", "fig9", "--param", "tax_rate=0.1,0.2", "--param", "tax_threshold=50"]
        )
        assert args.param == ["tax_rate=0.1,0.2", "tax_threshold=50"]


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig1", "fig4", "fig11"):
            assert experiment_id in output

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig4", "--scale", "smoke", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4" in output
        assert "efficiency_eq9" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99", "--scale", "smoke"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "fig4.csv"
        assert main(["run", "fig4", "--scale", "smoke", "--csv", str(target)]) == 0
        content = target.read_text()
        assert "average_wealth_c" in content.splitlines()[0]
        assert len(content.splitlines()) > 2

    def test_list_mentions_sweep_scenarios(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig9-taxation-grid" in output

    def test_run_with_reps_prints_aggregate(self, capsys):
        assert main(["run", "fig4", "--scale", "smoke", "--reps", "2"]) == 0
        output = capsys.readouterr().out
        assert "Sweep aggregate" in output
        assert "2 reps" in output

    def test_run_with_cache_dir_caches_a_single_run(self, tmp_path, capsys):
        # --cache-dir routes a plain run through the orchestrator: same
        # figure output, but the second invocation reuses the artifact.
        argv = ["run", "fig4", "--scale", "smoke", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Fig. 4" in first
        assert "1 executed" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "Fig. 4" in second
        assert "0 executed, 1 from cache" in second

    def test_sweep_command_with_cache_and_csv(self, tmp_path, capsys):
        target = tmp_path / "agg.csv"
        argv = [
            "sweep", "fig3",
            "--param", "num_peers=30,40", "--param", "num_samples=2",
            "--scale", "smoke", "--reps", "2", "--seed", "5",
            "--cache-dir", str(tmp_path / "cache"), "--csv", str(target),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 shards" in first
        assert "4 executed, 0 from cache" in first
        assert "summary: 2 configs | 0 cache hits | 4 shards executed |" in first
        content = target.read_text()
        assert "metric" in content.splitlines()[0]

        # A warm re-run reuses every shard and reproduces the bytes exactly.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 from cache" in second
        assert "summary: 2 configs | 4 cache hits | 0 shards executed |" in second
        assert target.read_text() == content

    def test_sweep_named_scenario_runs(self, capsys):
        assert main(["sweep", "fig9-taxation-grid", "--scale", "smoke", "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "Sweep aggregate" in output
        assert "stabilized_gini" in output

    def test_sweep_intra_jobs_matches_monolithic_output(self, capsys):
        argv = ["sweep", "fig7", "--param", "average_wealth=8", "--scale", "smoke"]
        assert main(argv) == 0
        monolithic = capsys.readouterr().out
        assert main(argv + ["--intra-jobs", "2"]) == 0
        partitioned = capsys.readouterr().out
        assert "intra_jobs=2" in partitioned
        # Identical tables; only the execution-summary line differs.
        assert monolithic.splitlines()[-5:] == partitioned.splitlines()[-5:]

    def test_sweep_unknown_experiment_fails(self, capsys):
        assert main(["sweep", "fig99", "--param", "a=1", "--scale", "smoke"]) == 2
        assert "not sweepable" in capsys.readouterr().err

    def test_sweep_malformed_param_fails(self, capsys):
        assert main(["sweep", "fig3", "--param", "oops"]) == 2
        assert "name=v1,v2" in capsys.readouterr().err

    def test_sweep_scenario_keeps_pinned_scale(self):
        from repro.cli import _build_sweep_spec

        # A paper bundle keeps its pinned paper scale when --scale is absent...
        args = build_parser().parse_args(["sweep", "fig7-paper"])
        assert _build_sweep_spec(args).scale == "paper"
        # ... an explicit --scale still overrides it...
        args = build_parser().parse_args(["sweep", "fig7-paper", "--scale", "smoke"])
        assert _build_sweep_spec(args).scale == "smoke"
        # ... and ad-hoc experiment-id sweeps default to the default scale.
        args = build_parser().parse_args(["sweep", "fig7", "--param", "average_wealth=10"])
        assert _build_sweep_spec(args).scale == "default"

    def test_list_prints_sweep_axes_for_every_experiment(self, capsys):
        from repro.experiments import EXPERIMENTS, sweep_params

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "sweep axes" in output
        for experiment_id in EXPERIMENTS:
            for axis in sweep_params(experiment_id):
                assert axis in output

    def test_list_mentions_paper_scale_bundles(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("fig1-paper", "fig5_6-paper", "fig10-paper"):
            assert name in output

    def test_sweep_unknown_axis_fails_before_running(self, capsys):
        # Axis validation happens at spec-build time, not inside a worker.
        assert main(["sweep", "fig1", "--param", "bogus=1", "--scale", "smoke"]) == 2
        err = capsys.readouterr().err
        assert "unknown sweep parameter" in err
        assert "initial_credits" in err

    def test_sweep_newly_ported_experiment_runs(self, capsys):
        argv = [
            "sweep", "fig1",
            "--param", "initial_credits=5,8",
            "--param", "num_peers=24", "--param", "horizon=60",
            "--scale", "smoke", "--reps", "2", "--jobs", "2",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "4 shards" in output
        assert "wealth_gini" in output

    def test_run_accepts_kernel_and_dtype_flags(self, capsys):
        argv = ["run", "fig10", "--scale", "smoke", "--kernel", "loop", "--dtype", "float64"]
        assert main(argv) == 0
        assert "stabilized_gini" in capsys.readouterr().out

    def test_run_kernel_flag_rejected_for_analytic_experiment(self, capsys):
        assert main(["run", "fig3", "--scale", "smoke", "--kernel", "loop"]) == 2
        assert "unknown sweep parameter" in capsys.readouterr().err

    def test_run_kernel_flag_is_bit_identical_to_default(self, capsys):
        assert main(["run", "fig10", "--scale", "smoke"]) == 0
        plain = capsys.readouterr().out
        assert main(["run", "fig10", "--scale", "smoke", "--kernel", "vectorized"]) == 0
        flagged = capsys.readouterr().out
        # Same simulated numbers, reported through the point-runner table.
        for line in plain.splitlines():
            if "dynamic" in line:
                assert line in flagged

    def test_sweep_kernel_flag_pins_axis_on_every_point(self, capsys):
        argv = [
            "sweep", "fig9", "--param", "tax_rate=0,0.2",
            "--scale", "smoke", "--kernel", "loop",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "2 shards" in output
        assert "loop" in output

    def test_sweep_dtype_flag_rejected_for_analytic_experiment(self, capsys):
        assert main(["sweep", "fig3", "--dtype", "float32", "--scale", "smoke"]) == 2
        assert "unknown sweep parameter" in capsys.readouterr().err

    def test_parser_rejects_unknown_kernel_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig10", "--kernel", "bogus"])
