"""Tests for the shared :class:`KernelOptions` bundle and the narrow-dtype path.

Covers the options object itself (validation, ``resolve``, immutability),
the deprecated per-config ``kernel`` field, the capacity/precision guards
that fire for narrow-dtype configurations, and the contractual properties
of the float32 representation: cross-kernel bit-identity at either dtype,
statistical (not bitwise) equivalence against the default float64 state,
and picklable mid-run state in both layouts.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.p2psim import (
    CreditMarketSimulator,
    KernelOptions,
    MarketSimConfig,
    Simulator,
    StreamingMarketSimulator,
    StreamingSimConfig,
    UtilizationMode,
)
from repro.runner import ExecutionPlan, execute


def market_config(**overrides):
    defaults = dict(
        num_peers=60,
        initial_credits=25.0,
        horizon=400.0,
        step=2.0,
        utilization=UtilizationMode.SYMMETRIC,
        topology_mean_degree=8.0,
        sample_interval=50.0,
        seed=13,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


def streaming_config(**overrides):
    defaults = dict(
        num_peers=30,
        initial_credits=15.0,
        horizon=120.0,
        topology_mean_degree=8.0,
        sample_interval=30.0,
        upload_capacity=2,
        seed=4,
    )
    defaults.update(overrides)
    return StreamingSimConfig(**defaults)


class TestKernelOptions:
    def test_defaults(self):
        options = KernelOptions()
        assert options.kernel == "vectorized"
        assert options.dtype == "float64"
        assert options.telemetry is True
        assert options.float_dtype == np.float64
        assert options.index_dtype == np.int64
        assert not options.is_narrow

    def test_narrow_dtypes(self):
        options = KernelOptions(dtype="float32")
        assert options.float_dtype == np.float32
        assert options.index_dtype == np.int32
        assert options.is_narrow

    def test_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="kernel"):
            KernelOptions(kernel="bogus")
        with pytest.raises(ValueError, match="dtype"):
            KernelOptions(dtype="float16")

    def test_resolve_maps_none_to_defaults(self):
        assert KernelOptions.resolve() == KernelOptions()
        assert KernelOptions.resolve(kernel="loop") == KernelOptions(kernel="loop")
        assert KernelOptions.resolve(dtype="float32") == KernelOptions(dtype="float32")
        assert KernelOptions.resolve(telemetry=False).telemetry is False

    def test_frozen_and_hashable(self):
        options = KernelOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.kernel = "loop"
        assert len({KernelOptions(), KernelOptions(kernel="loop")}) == 2


class TestDeprecatedKernelField:
    @pytest.mark.parametrize("config_cls", [MarketSimConfig, StreamingSimConfig])
    def test_legacy_field_warns_and_wins(self, config_cls):
        with pytest.warns(DeprecationWarning, match="KernelOptions"):
            config = config_cls(kernel="loop", options=KernelOptions(kernel="vectorized"))
        assert config.options.kernel == "loop"

    @pytest.mark.parametrize("config_cls", [MarketSimConfig, StreamingSimConfig])
    def test_options_path_is_silent(self, config_cls, recwarn):
        config = config_cls(options=KernelOptions(kernel="loop"))
        assert config.options.kernel == "loop"
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_legacy_field_still_validates(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="kernel"):
                MarketSimConfig(kernel="bogus")

    def test_rejects_non_options_object(self):
        with pytest.raises(TypeError, match="KernelOptions"):
            MarketSimConfig(options="vectorized")


class TestNarrowDtypeGuards:
    def test_int32_capacity_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="int32"):
            MarketSimConfig(num_peers=2**31, options=KernelOptions(dtype="float32"))

    def test_float32_precision_warning_at_config_time(self):
        with pytest.warns(UserWarning, match="float32"):
            MarketSimConfig(
                num_peers=200,
                initial_credits=100000.0,
                options=KernelOptions(dtype="float32"),
            )

    def test_default_dtype_is_unguarded(self, recwarn):
        MarketSimConfig(num_peers=200, initial_credits=100000.0)
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]


class TestSimulatorProtocol:
    def test_simulators_satisfy_protocol(self):
        assert isinstance(CreditMarketSimulator(market_config()), Simulator)
        assert isinstance(StreamingMarketSimulator(streaming_config()), Simulator)


class TestFloat32Path:
    def test_market_kernels_byte_identical_at_float32(self):
        vectorized = CreditMarketSimulator.run_config(
            market_config(options=KernelOptions(kernel="vectorized", dtype="float32"))
        )
        loop = CreditMarketSimulator.run_config(
            market_config(options=KernelOptions(kernel="loop", dtype="float32"))
        )
        assert vectorized.final_wealths.tobytes() == loop.final_wealths.tobytes()
        assert tuple(vectorized.recorder.gini_series.y) == tuple(loop.recorder.gini_series.y)

    def test_streaming_kernels_byte_identical_at_float32(self):
        vectorized = StreamingMarketSimulator.run_config(
            streaming_config(options=KernelOptions(kernel="vectorized", dtype="float32"))
        )
        loop = StreamingMarketSimulator.run_config(
            streaming_config(options=KernelOptions(kernel="loop", dtype="float32"))
        )
        assert vectorized.final_wealths.tobytes() == loop.final_wealths.tobytes()
        assert vectorized.chunks_delivered == loop.chunks_delivered

    def test_market_float32_statistically_equivalent(self):
        wide = CreditMarketSimulator.run_config(market_config())
        narrow = CreditMarketSimulator.run_config(
            market_config(options=KernelOptions(dtype="float32"))
        )
        assert narrow.final_wealths.dtype == np.float32
        # Credit conservation is exact in both representations (integer
        # totals well inside float32's exact range) ...
        assert float(narrow.final_wealths.sum()) == pytest.approx(
            float(wide.final_wealths.sum()), rel=1e-6
        )
        # ... and the distributional outcome matches statistically, not
        # bitwise: same seed, same draws, occasional boundary routing flips.
        assert narrow.final_gini == pytest.approx(wide.final_gini, abs=0.05)
        assert float(np.mean(narrow.final_wealths)) == pytest.approx(
            float(np.mean(wide.final_wealths)), rel=1e-5
        )

    def test_streaming_float32_statistically_equivalent(self):
        wide = StreamingMarketSimulator.run_config(streaming_config())
        narrow = StreamingMarketSimulator.run_config(
            streaming_config(options=KernelOptions(dtype="float32"))
        )
        assert narrow.final_wealths.dtype == np.float32
        assert float(narrow.final_wealths.sum()) == pytest.approx(
            float(wide.final_wealths.sum()), rel=1e-6
        )
        assert narrow.final_gini == pytest.approx(wide.final_gini, abs=0.08)
        assert narrow.chunks_delivered == pytest.approx(wide.chunks_delivered, rel=0.1)


class TestPicklableStateBothLayouts:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_market_pickle_roundtrip_mid_run(self, dtype):
        config = market_config(options=KernelOptions(dtype=dtype))
        simulator = CreditMarketSimulator(config)
        half = simulator.total_rounds() // 2
        simulator.advance_rounds(half)
        clone = pickle.loads(pickle.dumps(simulator))
        rest = simulator.total_rounds() - half
        simulator.advance_rounds(rest)
        clone.advance_rounds(rest)
        original = simulator.finalize()
        resumed = clone.finalize()
        assert original.final_wealths.tobytes() == resumed.final_wealths.tobytes()

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_market_partitioned_matches_monolithic(self, dtype):
        config = market_config(options=KernelOptions(dtype=dtype))
        monolithic = CreditMarketSimulator.run_config(config)
        partitioned = execute(config, ExecutionPlan(intra_jobs=3))
        np.testing.assert_array_equal(monolithic.final_wealths, partitioned.final_wealths)
        assert partitioned.final_wealths.dtype == np.dtype(dtype)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_streaming_partitioned_matches_monolithic(self, dtype):
        config = streaming_config(options=KernelOptions(dtype=dtype))
        monolithic = StreamingMarketSimulator.run_config(config)
        partitioned = execute(config, ExecutionPlan(intra_jobs=3))
        np.testing.assert_array_equal(monolithic.final_wealths, partitioned.final_wealths)
        assert partitioned.final_wealths.dtype == np.dtype(dtype)
