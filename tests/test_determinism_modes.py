"""Cross-mode determinism: kernels, round-block partitioning, intra-jobs.

The PR that vectorised the spending hot path and added intra-run
parallelism promised that *how* a simulation executes never changes
*what* it produces.  These tests pin that contract at every layer:

* simulator — the ``loop`` and ``vectorized`` kernels, fed the same
  configuration, must end in byte-identical :class:`MarketSimResult`\\ s
  (fig7-shaped symmetric-noise markets and fig10-shaped dynamic-spending
  markets, plus churn/taxation variants);
* partition — a run split into checkpointed round-blocks must be
  byte-identical to the monolithic run;
* orchestrator — ``run_sweep(..., intra_jobs=2)`` must produce the same
  shard payloads and aggregate CSV as the monolithic sweep for the fig7
  and fig10 smoke scenarios.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.spending import DynamicSpendingPolicy, FixedSpendingPolicy
from repro.core.taxation import ThresholdIncomeTax
from repro.overlay import ChurnConfig
from repro.p2psim import (
    CreditMarketSimulator,
    KernelOptions,
    MarketSimConfig,
    UtilizationMode,
)
from repro.runner import (
    ParamGrid,
    SweepSpec,
    ExecutionPlan,
    aggregate_sweep,
    execute,
    run_sweep,
)


def fingerprint(result):
    """Byte-level identity of everything a MarketSimResult reports."""
    return (
        result.final_wealths.tobytes(),
        result.spending_rates.tobytes(),
        result.earning_rates.tobytes(),
        result.total_transfers,
        result.joins,
        result.leaves,
        result.extras["tax_pool"],
        tuple(result.recorder.gini_series.x),
        tuple(result.recorder.gini_series.y),
        tuple(result.recorder.bankrupt_series.y),
        tuple(result.recorder.mean_wealth_series.y),
        tuple(result.recorder.population_series.y),
    )


def fig7_like_config(**overrides):
    """Smoke-scale symmetric market with realised-rate noise (the Fig. 7 shape)."""
    defaults = dict(
        num_peers=60,
        initial_credits=10.0,
        horizon=300.0,
        step=2.0,
        utilization=UtilizationMode.SYMMETRIC,
        spending_rate_noise=0.05,
        topology_mean_degree=8.0,
        sample_interval=50.0,
        seed=13,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


def fig10_like_config(**overrides):
    """Smoke-scale asymmetric market under the dynamic spending rule (Fig. 10)."""
    defaults = dict(
        num_peers=60,
        initial_credits=30.0,
        horizon=400.0,
        step=2.0,
        utilization=UtilizationMode.ASYMMETRIC,
        spending_policy=DynamicSpendingPolicy(wealth_threshold=30.0),
        topology_mean_degree=8.0,
        sample_interval=50.0,
        seed=29,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


CONFIG_FACTORIES = {
    "fig7-like": fig7_like_config,
    "fig10-like": fig10_like_config,
}


class TestKernelEquivalence:
    @pytest.mark.parametrize("shape", sorted(CONFIG_FACTORIES))
    def test_loop_and_vectorized_kernels_byte_identical(self, shape):
        config = CONFIG_FACTORIES[shape]()
        vectorized = CreditMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="vectorized"))
        )
        loop = CreditMarketSimulator.run_config(dataclasses.replace(config, options=KernelOptions(kernel="loop")))
        assert fingerprint(vectorized) == fingerprint(loop)

    def test_kernels_agree_under_churn_and_taxation(self):
        config = fig7_like_config(
            churn=ChurnConfig(arrival_rate=0.2, mean_lifespan=150.0),
            tax_policy=ThresholdIncomeTax(rate=0.2, threshold=8.0),
        )
        vectorized = CreditMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="vectorized"))
        )
        loop = CreditMarketSimulator.run_config(dataclasses.replace(config, options=KernelOptions(kernel="loop")))
        assert vectorized.joins > 0 and vectorized.leaves > 0  # churn exercised
        assert fingerprint(vectorized) == fingerprint(loop)

    def test_boundary_draw_routes_to_last_neighbour(self):
        # u + 3*row can round up to exactly the row's final cdf value (e.g.
        # u = 1 - 2**-53 at row 1 rounds to 4.0); both kernels must clamp
        # that onto the last real neighbour instead of indexing the padding.
        simulator = CreditMarketSimulator(fig7_like_config())
        pack = simulator._routing_pack()
        count = pack.alive_slots.size
        spendable = np.ones(count, dtype=np.int64)
        draws = np.full(count, 1.0 - 2.0**-53)
        vectorized = simulator._route_credits_vectorized(pack, spendable, draws).copy()
        loop = simulator._route_credits_loop(pack, spendable, draws).copy()
        assert vectorized.tobytes() == loop.tobytes()
        assert vectorized.sum() == count  # every credit landed on a real peer
        assert np.all(vectorized[~simulator._alive] == 0.0)

    def test_dynamic_policy_takes_vector_fast_path(self):
        # The dynamic rule must visibly accelerate rich peers through the
        # vectorised path (guards against the fast path silently returning
        # base rates).
        config = fig10_like_config(initial_credits=90.0)
        dynamic = CreditMarketSimulator.run_config(config)
        fixed = CreditMarketSimulator.run_config(
            dataclasses.replace(config, spending_policy=FixedSpendingPolicy())
        )
        assert dynamic.total_transfers > fixed.total_transfers


class TestPartitionEquivalence:
    @pytest.mark.parametrize("shape", sorted(CONFIG_FACTORIES))
    @pytest.mark.parametrize("blocks", [2, 3, 7])
    def test_round_blocks_byte_identical_to_monolithic(self, shape, blocks):
        config = CONFIG_FACTORIES[shape]()
        monolithic = CreditMarketSimulator.run_config(config)
        partitioned = execute(config, ExecutionPlan(intra_jobs=blocks))
        assert fingerprint(monolithic) == fingerprint(partitioned)

    def test_partitioned_snapshots_match(self):
        config = fig7_like_config()
        times = [100.0, 200.0]
        monolithic = CreditMarketSimulator(config, snapshot_times=times).run()
        partitioned = execute(config, ExecutionPlan(intra_jobs=3), snapshot_times=times)
        assert set(partitioned.recorder.snapshots) == set(monolithic.recorder.snapshots)
        for time in times:
            np.testing.assert_array_equal(
                partitioned.recorder.snapshots[time], monolithic.recorder.snapshots[time]
            )


def _sweep_spec(experiment_id, grid):
    return SweepSpec(experiment_id, grid=grid, replications=2, base_seed=17, scale="smoke")


SWEEP_SPECS = {
    "fig7": _sweep_spec("fig7", ParamGrid({"average_wealth": [8.0, 16.0]})),
    # fig9 reads mutable tax-policy counters back after each run — the
    # partitioned path must sync them onto the caller's policy objects.
    "fig9": _sweep_spec("fig9", ParamGrid({"tax_rate": [0.2], "tax_threshold": [20.0, 40.0]})),
    "fig10": _sweep_spec(
        "fig10",
        [{"spending_policy": "fixed"}, {"spending_policy": "dynamic", "wealth_threshold": 20.0}],
    ),
}


class TestIntraJobsSweepEquivalence:
    @pytest.mark.parametrize("experiment_id", sorted(SWEEP_SPECS))
    def test_monolithic_vs_intra_jobs_aggregates_byte_identical(self, experiment_id):
        spec = SWEEP_SPECS[experiment_id]
        monolithic = run_sweep(spec, jobs=1)
        chained = run_sweep(spec, jobs=1, intra_jobs=2)
        pooled = run_sweep(spec, jobs=2, intra_jobs=2)
        assert monolithic.executed == chained.executed == pooled.executed == 4
        assert (
            [shard.payload for shard in monolithic.shards]
            == [shard.payload for shard in chained.shards]
            == [shard.payload for shard in pooled.shards]
        )
        reference = aggregate_sweep(monolithic).to_csv()
        assert aggregate_sweep(chained).to_csv() == reference
        assert aggregate_sweep(pooled).to_csv() == reference
