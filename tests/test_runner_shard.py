"""Unit tests for spatial shard planning and execution primitives.

The sharding layer's contract has three legs: the partition is a *total,
disjoint cover* of the peer-id space (including ids that only exist after
churn), the per-shard executors return results in task order regardless
of backend, and the ambient override context changes execution without
touching configurations.  Each leg is pinned here in isolation; the
byte-identity of whole sharded simulations lives in
``test_shard_determinism.py``.
"""

import numpy as np
import pytest

from repro.overlay import erdos_renyi_topology, ring_topology, scale_free_topology
from repro.p2psim import KernelOptions
from repro.runner.shard import (
    MAX_SHARDS,
    ShardPlan,
    active_shard_overrides,
    plan_shards,
    resolve_shard_settings,
    run_shard_tasks,
    shard_overrides,
)

PARTITIONERS = ("overlay", "hash")


def _topology(kind="scale-free", num_peers=200, seed=11):
    if kind == "scale-free":
        return scale_free_topology(num_peers, mean_degree=8.0, seed=seed)
    if kind == "erdos-renyi":
        return erdos_renyi_topology(num_peers, mean_degree=6.0, seed=seed)
    return ring_topology(num_peers)


class TestShardPlanCover:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("kind", ["scale-free", "erdos-renyi", "ring"])
    def test_full_disjoint_cover_of_initial_peers(self, partitioner, shards, kind):
        topology = _topology(kind)
        plan = plan_shards(topology, shards, partitioner=partitioner)
        ids = np.asarray(topology.peers(), dtype=np.int64)
        assignment = plan.shard_of(ids)
        # Total: every peer lands in a valid shard (no -1 / out-of-range).
        assert assignment.min() >= 0
        assert assignment.max() < shards
        # Disjoint + covering by construction of a single-valued map:
        # per-peer assignment is a function, so summing per-shard counts
        # must reproduce the population exactly.
        assert int(np.bincount(assignment, minlength=shards).sum()) == ids.size
        assert plan.sizes == tuple(
            int(n) for n in np.bincount(assignment, minlength=shards)[:shards]
        )

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_churned_ids_beyond_table_stay_covered(self, partitioner):
        """Peers that join mid-run get ids past the planning table."""
        plan = plan_shards(_topology(num_peers=120), 4, partitioner=partitioner)
        joined = np.arange(120, 520, dtype=np.int64)  # ids unknown at planning
        assignment = plan.shard_of(joined)
        assert assignment.min() >= 0
        assert assignment.max() < 4
        np.testing.assert_array_equal(assignment, (joined % 4).astype(np.int16))
        for peer_id in (120, 121, 4093, 10**7):
            assert plan.shard_of_peer(peer_id) == peer_id % 4

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_scalar_and_vector_lookup_agree(self, partitioner):
        plan = plan_shards(_topology(num_peers=90), 3, partitioner=partitioner)
        ids = np.arange(0, 300, 7, dtype=np.int64)
        vector = plan.shard_of(ids)
        scalars = [plan.shard_of_peer(int(peer)) for peer in ids]
        assert vector.tolist() == scalars

    def test_overlay_quotas_are_balanced(self):
        plan = plan_shards(_topology(num_peers=203), 4, partitioner="overlay")
        assert max(plan.sizes) - min(plan.sizes) <= 1
        assert plan.imbalance == pytest.approx(max(plan.sizes) / (203 / 4))

    def test_plans_are_deterministic(self):
        topology = _topology(num_peers=150, seed=3)
        for partitioner in PARTITIONERS:
            first = plan_shards(topology, 4, partitioner=partitioner)
            second = plan_shards(topology, 4, partitioner=partitioner)
            np.testing.assert_array_equal(first.table, second.table)
            assert first.sizes == second.sizes
            assert first.edge_cut == second.edge_cut

    def test_invalid_arguments_rejected(self):
        topology = _topology(num_peers=60)
        with pytest.raises(ValueError):
            plan_shards(topology, 0)
        with pytest.raises(ValueError):
            plan_shards(topology, MAX_SHARDS + 1)
        with pytest.raises(ValueError):
            plan_shards(topology, 2, partitioner="metis")


class TestPartitionMetrics:
    def test_plan_edge_cut_matches_topology_metrics(self):
        topology = _topology(num_peers=160, seed=5)
        for partitioner in PARTITIONERS:
            plan = plan_shards(topology, 4, partitioner=partitioner)
            metrics = topology.partition_metrics(plan.shard_of_peer)
            assert metrics["edge_cut"] == plan.edge_cut
            assert metrics["total_edges"] == plan.total_edges
            assert metrics["cut_fraction"] == pytest.approx(plan.cut_fraction)
            assert sum(metrics["shard_sizes"].values()) == topology.num_peers

    def test_overlay_cut_beats_hash_on_clustered_graph(self):
        """On a ring the BFS partitioner is near-optimal; hash cuts ~all edges."""
        topology = ring_topology(240)
        overlay = plan_shards(topology, 4, partitioner="overlay")
        hashed = plan_shards(topology, 4, partitioner="hash")
        assert overlay.edge_cut is not None and hashed.edge_cut is not None
        assert overlay.edge_cut < hashed.edge_cut
        assert overlay.edge_cut <= 8  # 4 contiguous arcs → a handful of cuts

    def test_partition_boundary_edges_cross_shards_only(self):
        topology = _topology(num_peers=100, seed=7)
        plan = plan_shards(topology, 2, partitioner="overlay")
        for u, v in topology.partition_boundary_edges(plan.shard_of_peer):
            assert plan.shard_of_peer(u) != plan.shard_of_peer(v)

    def test_single_shard_plan_is_trivial(self):
        plan = plan_shards(_topology(num_peers=80), 1)
        assert plan.sizes == (80,)
        assert plan.imbalance == pytest.approx(1.0)
        ids = np.arange(80, dtype=np.int64)
        assert plan.shard_of(ids).max() == 0


class TestRunShardTasks:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_return_in_task_order(self, backend):
        data = np.arange(40.0)
        chunks = np.array_split(np.arange(40), 4)
        tasks = [lambda rows=rows: float(data[rows].sum()) for rows in chunks]
        results = run_shard_tasks(tasks, backend=backend)
        assert results == [float(data[rows].sum()) for rows in chunks]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_task_errors_propagate(self, backend):
        def boom():
            raise RuntimeError("shard exploded")

        with pytest.raises(RuntimeError, match="shard exploded"):
            run_shard_tasks([lambda: 1, boom], backend=backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_shard_tasks([lambda: 1], backend="gpu")

    def test_single_task_runs_inline(self):
        # One task short-circuits every backend to an inline call.
        assert run_shard_tasks([lambda: "only"], backend="process") == ["only"]


class TestShardOverrides:
    def test_overrides_merge_over_options(self):
        options = KernelOptions(shards=2, partitioner="hash", shard_backend="serial")
        assert resolve_shard_settings(options) == (2, "hash", "serial")
        with shard_overrides(shards=4, partitioner="overlay"):
            assert resolve_shard_settings(options) == (4, "overlay", "serial")
            assert active_shard_overrides().shards == 4
        # The context restores cleanly.
        assert active_shard_overrides() is None
        assert resolve_shard_settings(options) == (2, "hash", "serial")

    def test_defaults_without_overrides(self):
        assert resolve_shard_settings(KernelOptions()) == (1, "overlay", "thread")

    def test_loop_kernel_rejected_with_shards(self):
        options = KernelOptions(kernel="loop")
        with shard_overrides(shards=2):
            with pytest.raises(ValueError, match="vectorized"):
                resolve_shard_settings(options)

    def test_invalid_override_values_rejected(self):
        with shard_overrides(shards=0):
            with pytest.raises(ValueError):
                resolve_shard_settings(KernelOptions())
        with shard_overrides(partitioner="metis"):
            with pytest.raises(ValueError):
                resolve_shard_settings(KernelOptions())
        with shard_overrides(shard_backend="gpu"):
            with pytest.raises(ValueError):
                resolve_shard_settings(KernelOptions())


class TestKernelOptionsShardFields:
    def test_options_validate_shard_fields(self):
        with pytest.raises(ValueError):
            KernelOptions(shards=0)
        with pytest.raises(ValueError):
            KernelOptions(partitioner="metis")
        with pytest.raises(ValueError):
            KernelOptions(shard_backend="gpu")
        with pytest.raises(ValueError):
            KernelOptions(kernel="loop", shards=2)

    def test_resolve_carries_shard_fields(self):
        resolved = KernelOptions().resolve(shards=4, partitioner="hash")
        assert resolved.shards == 4
        assert resolved.partitioner == "hash"
        assert isinstance(ShardPlan.__dataclass_fields__, dict)  # frozen plan API
