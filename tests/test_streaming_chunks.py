"""Tests for chunks, buffer maps and chunk stores."""

import pytest

from repro.streaming import BufferMap, Chunk, ChunkStore


class TestChunk:
    def test_valid_chunk(self):
        chunk = Chunk(index=3, size_bytes=1000, origin_time=1.5)
        assert chunk.index == 3

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Chunk(index=-1)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            Chunk(index=0, size_bytes=0)

    def test_chunks_are_hashable_and_frozen(self):
        chunk = Chunk(index=1)
        assert chunk in {chunk}
        with pytest.raises(AttributeError):
            chunk.index = 2


class TestBufferMap:
    def test_add_and_contains(self):
        buffer_map = BufferMap()
        assert buffer_map.add(5)
        assert 5 in buffer_map
        assert 6 not in buffer_map

    def test_duplicate_add_returns_false(self):
        buffer_map = BufferMap()
        buffer_map.add(1)
        assert buffer_map.add(1) is False
        assert len(buffer_map) == 1

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            BufferMap().add(-3)

    def test_window_eviction(self):
        buffer_map = BufferMap(window_size=3)
        for index in range(6):
            buffer_map.add(index)
        assert sorted(buffer_map) == [3, 4, 5]
        assert buffer_map.highest_index == 5

    def test_missing_in_range(self):
        buffer_map = BufferMap()
        buffer_map.add(1)
        buffer_map.add(3)
        assert buffer_map.missing_in_range(0, 5) == [0, 2, 4]

    def test_contiguous_from(self):
        buffer_map = BufferMap()
        for index in (2, 3, 4, 6):
            buffer_map.add(index)
        assert buffer_map.contiguous_from(2) == 3
        assert buffer_map.contiguous_from(5) == 0

    def test_discard(self):
        buffer_map = BufferMap()
        buffer_map.add(1)
        buffer_map.discard(1)
        assert 1 not in buffer_map

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BufferMap(window_size=0)

    def test_holdings_snapshot_is_frozen(self):
        buffer_map = BufferMap()
        buffer_map.add(1)
        holdings = buffer_map.holdings()
        assert holdings == frozenset({1})
        with pytest.raises(AttributeError):
            holdings.add(2)


class TestChunkStore:
    def test_insert_and_get(self):
        store = ChunkStore()
        chunk = Chunk(index=4)
        assert store.insert(chunk)
        assert store.get(4) is chunk
        assert store.has(4)
        assert store.received_count == 1

    def test_duplicate_counted(self):
        store = ChunkStore()
        store.insert(Chunk(index=1))
        assert store.insert(Chunk(index=1)) is False
        assert store.duplicate_count == 1

    def test_eviction_removes_payload(self):
        store = ChunkStore(window_size=2)
        for index in range(4):
            store.insert(Chunk(index=index))
        assert store.get(0) is None
        assert store.indices() == [2, 3]

    def test_bulk_insert(self):
        store = ChunkStore()
        stored = store.bulk_insert([Chunk(index=i) for i in (0, 1, 1, 2)])
        assert stored == 3
        assert len(store) == 3
