"""Tests for the related-work baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CreditNetwork,
    ScripSystem,
    TitForTatSwarm,
    simulate_money_exchange,
)
from repro.overlay import complete_topology, ring_topology, scale_free_topology


class TestScripSystem:
    def test_basic_run_statistics(self):
        system = ScripSystem(num_agents=50, average_scrip=5.0, seed=1)
        result = system.run(num_requests=5000)
        assert 0.0 < result.success_rate <= 1.0
        assert result.success_rate + result.failure_no_money + result.failure_no_provider == pytest.approx(1.0)
        assert result.final_holdings.sum() == pytest.approx(50 * 5.0)

    def test_too_much_scrip_hurts(self):
        # With holdings far above the satiation point nobody volunteers.
        rich = ScripSystem(num_agents=50, average_scrip=50.0, satiation_point=10.0, seed=2)
        moderate = ScripSystem(num_agents=50, average_scrip=5.0, satiation_point=10.0, seed=2)
        assert rich.run(5000).success_rate < moderate.run(5000).success_rate

    def test_too_little_scrip_hurts(self):
        poor = ScripSystem(num_agents=50, average_scrip=0.5, satiation_point=10.0, seed=3)
        moderate = ScripSystem(num_agents=50, average_scrip=5.0, satiation_point=10.0, seed=3)
        assert poor.run(5000).failure_no_money > moderate.run(5000).failure_no_money

    def test_sweep(self):
        system = ScripSystem(num_agents=30, seed=4)
        results = system.sweep_average_scrip([1.0, 5.0, 25.0], num_requests=2000)
        assert len(results) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ScripSystem(num_agents=1)
        with pytest.raises(ValueError):
            ScripSystem(provider_fraction=0.0)
        with pytest.raises(ValueError):
            ScripSystem().run(num_requests=0)


class TestCreditNetwork:
    def test_single_hop_payments(self):
        network = CreditNetwork(ring_topology(6), credit_capacity=2.0, multi_hop=False, seed=1)
        assert network.pay(0, 1)
        assert network.residual(1, 0) == 1.0
        assert network.residual(0, 1) == 3.0  # payee can now pay back more

    def test_single_hop_fails_without_credit(self):
        network = CreditNetwork(ring_topology(6), credit_capacity=1.0, multi_hop=False, seed=1)
        assert network.pay(0, 1)
        assert not network.pay(0, 1)  # credit line exhausted

    def test_multi_hop_routing(self):
        # 0 and 3 are not neighbours on the ring; payment must route through the path.
        network = CreditNetwork(ring_topology(6), credit_capacity=2.0, multi_hop=True, seed=1)
        assert network.pay(0, 3)

    def test_non_unit_payments_rejected(self):
        network = CreditNetwork(ring_topology(4), seed=1)
        with pytest.raises(ValueError):
            network.pay(0, 1, amount=2.0)

    def test_liquidity_improves_with_capacity(self):
        topo = scale_free_topology(40, mean_degree=6, seed=2)
        low = CreditNetwork(topo, credit_capacity=1.0, seed=3).run(num_payments=3000)
        high = CreditNetwork(topo.copy(), credit_capacity=5.0, seed=3).run(num_payments=3000)
        assert high.success_rate >= low.success_rate

    def test_liquidity_improves_with_density(self):
        sparse = CreditNetwork(ring_topology(20), credit_capacity=2.0, seed=4).run(3000)
        dense = CreditNetwork(complete_topology(20), credit_capacity=2.0, seed=4).run(3000)
        assert dense.success_rate >= sparse.success_rate

    def test_bankruptcy_probability_bounds(self):
        result = CreditNetwork(ring_topology(10), credit_capacity=1.0, seed=5).run(2000)
        assert 0.0 <= result.bankruptcy_probability <= 1.0

    def test_purchasing_power_conserved(self):
        # Each payment moves one unit of residual credit around; the total
        # outgoing purchasing power over all nodes is conserved.
        topo = ring_topology(8)
        network = CreditNetwork(topo, credit_capacity=2.0, seed=6)
        before = sum(network.purchasing_power(node) for node in topo.peers())
        network.run(num_payments=500, sample_every=0)
        after = sum(network.purchasing_power(node) for node in topo.peers())
        assert after == pytest.approx(before)


class TestTitForTat:
    def test_swarm_distributes_content(self):
        topo = scale_free_topology(40, mean_degree=8, seed=1)
        swarm = TitForTatSwarm(topo, num_chunks=60, seed=2)
        result = swarm.run(num_rounds=80)
        assert result.completion_fraction.mean() > 0.5
        assert result.download_rates.max() > 0

    def test_free_riders_starved(self):
        # Keep the content large relative to the horizon so downloads stay
        # bandwidth-limited and reciprocity actually matters.
        topo = scale_free_topology(40, mean_degree=8, seed=3)
        swarm = TitForTatSwarm(topo, num_chunks=600, free_rider_fraction=0.25, seed=4)
        result = swarm.run(num_rounds=60)
        cooperator_rate = result.download_rates.mean()
        assert result.free_rider_rate <= cooperator_rate

    def test_validation(self):
        topo = ring_topology(5)
        with pytest.raises(ValueError):
            TitForTatSwarm(topo, num_chunks=0)
        with pytest.raises(ValueError):
            TitForTatSwarm(topo, free_rider_fraction=1.0)
        with pytest.raises(ValueError):
            TitForTatSwarm(topo).run(num_rounds=0)


class TestMoneyExchange:
    def test_total_wealth_conserved(self):
        result = simulate_money_exchange(num_agents=100, average_wealth=10.0,
                                         num_exchanges=20_000, rule="uniform", seed=1)
        assert result.final_wealths.sum() == pytest.approx(1000.0, rel=1e-9)

    def test_uniform_rule_approaches_exponential_gini(self):
        result = simulate_money_exchange(num_agents=300, num_exchanges=150_000,
                                         rule="uniform", seed=2)
        assert result.final_gini == pytest.approx(0.5, abs=0.06)

    def test_savings_reduce_inequality(self):
        base = simulate_money_exchange(num_agents=200, num_exchanges=80_000, rule="uniform", seed=3)
        saving = simulate_money_exchange(num_agents=200, num_exchanges=80_000, rule="savings",
                                         savings_fraction=0.8, seed=3)
        assert saving.final_gini < base.final_gini

    def test_fixed_rule_keeps_wealth_non_negative(self):
        result = simulate_money_exchange(num_agents=100, average_wealth=2.0,
                                         num_exchanges=50_000, rule="fixed", seed=4)
        assert np.all(result.final_wealths >= -1e-9)

    def test_proportional_rule_runs(self):
        result = simulate_money_exchange(num_agents=100, num_exchanges=20_000,
                                         rule="proportional", seed=5)
        assert 0.0 < result.final_gini < 1.0

    def test_invalid_rule(self):
        with pytest.raises(ValueError):
            simulate_money_exchange(rule="barter")
