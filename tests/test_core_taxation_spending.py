"""Tests for taxation policies and spending-rate policies."""

import numpy as np
import pytest

from repro.core import CreditLedger, DynamicSpendingPolicy, FixedSpendingPolicy, NoTax, ThresholdIncomeTax
from repro.core.spending import SpendingPolicy
from repro.core.taxation import ProportionalRedistributionTax


def ledger_with(balances):
    ledger = CreditLedger()
    for peer, balance in balances.items():
        ledger.open_wallet(peer, balance)
    return ledger


class TestNoTax:
    def test_collects_nothing(self):
        ledger = ledger_with({1: 100.0, 2: 5.0})
        policy = NoTax()
        assert policy.on_income(ledger, 1, 10.0, 0.0, [1, 2]) == 0.0
        assert ledger.wallet(1).balance == 100.0
        assert policy.describe() == "no taxation"


class TestThresholdIncomeTax:
    def test_taxes_only_above_threshold(self):
        ledger = ledger_with({1: 100.0, 2: 10.0})
        policy = ThresholdIncomeTax(rate=0.2, threshold=50.0)
        collected_rich = policy.on_income(ledger, 1, 10.0, 0.0, [1, 2])
        collected_poor = policy.on_income(ledger, 2, 10.0, 0.0, [1, 2])
        assert collected_rich == pytest.approx(2.0)
        assert collected_poor == 0.0
        # The 2 collected credits immediately fund one rebate round of 1
        # credit to each of the 2 peers, so the rich peer nets 100 - 2 + 1.
        assert policy.rebate_rounds == 1
        assert ledger.wallet(1).balance == pytest.approx(99.0)
        assert ledger.wallet(2).balance == pytest.approx(11.0)

    def test_rebate_triggered_when_pool_full(self):
        ledger = ledger_with({1: 1000.0, 2: 0.0})
        policy = ThresholdIncomeTax(rate=0.5, threshold=10.0, rebate_unit=1.0)
        # Collect 5 credits: with 2 peers, two full rebate rounds of 1 credit each.
        policy.on_income(ledger, 1, 10.0, 0.0, [1, 2])
        assert policy.total_collected == pytest.approx(5.0)
        assert policy.rebate_rounds == 2
        assert ledger.wallet(2).balance == pytest.approx(2.0)
        assert ledger.system_pool == pytest.approx(1.0)
        ledger.verify_conservation()

    def test_zero_income_not_taxed(self):
        ledger = ledger_with({1: 100.0})
        policy = ThresholdIncomeTax(rate=0.1, threshold=10.0)
        assert policy.on_income(ledger, 1, 0.0, 0.0, [1]) == 0.0

    def test_describe_mentions_parameters(self):
        text = ThresholdIncomeTax(rate=0.1, threshold=80).describe()
        assert "0.1" in text and "80" in text

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThresholdIncomeTax(rate=1.5, threshold=10.0)
        with pytest.raises(ValueError):
            ThresholdIncomeTax(rate=0.1, threshold=-1.0)


class TestProportionalRedistributionTax:
    def test_redistributes_to_poor_immediately(self):
        ledger = ledger_with({1: 200.0, 2: 10.0, 3: 5.0})
        policy = ProportionalRedistributionTax(rate=0.5, threshold=50.0)
        collected = policy.on_income(ledger, 1, 20.0, 0.0, [1, 2, 3])
        assert collected == pytest.approx(10.0)
        # The poorer peer (3) gets the larger share of the redistribution.
        assert ledger.wallet(3).balance > ledger.wallet(2).balance - 5.0
        assert ledger.wallet(2).balance + ledger.wallet(3).balance == pytest.approx(25.0)
        assert ledger.system_pool == pytest.approx(0.0)
        ledger.verify_conservation()

    def test_no_poor_peers_means_no_tax(self):
        ledger = ledger_with({1: 200.0, 2: 150.0})
        policy = ProportionalRedistributionTax(rate=0.5, threshold=50.0)
        assert policy.on_income(ledger, 1, 20.0, 0.0, [1, 2]) == 0.0


class TestSpendingPolicies:
    def test_fixed_policy_ignores_wealth(self):
        policy = FixedSpendingPolicy()
        assert policy.effective_rate(2.0, 1000.0) == 2.0
        assert policy.effective_rate(2.0, 0.0) == 2.0

    def test_dynamic_policy_below_threshold_is_base(self):
        policy = DynamicSpendingPolicy(wealth_threshold=100.0)
        assert policy.effective_rate(1.0, 50.0) == 1.0
        assert policy.effective_rate(1.0, 100.0) == 1.0

    def test_dynamic_policy_scales_above_threshold(self):
        policy = DynamicSpendingPolicy(wealth_threshold=100.0)
        assert policy.effective_rate(1.0, 250.0) == pytest.approx(2.5)

    def test_dynamic_policy_cap(self):
        policy = DynamicSpendingPolicy(wealth_threshold=100.0, max_multiplier=2.0)
        assert policy.effective_rate(1.0, 1000.0) == pytest.approx(2.0)

    def test_dynamic_policy_negative_wealth_clamped(self):
        policy = DynamicSpendingPolicy(wealth_threshold=10.0)
        assert policy.effective_rate(1.0, -5.0) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DynamicSpendingPolicy(wealth_threshold=0.0)
        with pytest.raises(ValueError):
            DynamicSpendingPolicy(wealth_threshold=10.0, max_multiplier=0.5)

    def test_describe(self):
        assert "fixed" in FixedSpendingPolicy().describe()
        assert "m=100" in DynamicSpendingPolicy(100.0).describe()


class TestEffectiveRateVector:
    """The vectorised fast path must agree bit-for-bit with the scalar rule."""

    BASES = np.array([0.5, 1.0, 2.0, 3.0, 0.25])
    WEALTHS = np.array([-5.0, 0.0, 99.9, 100.0, 1234.5])

    def _assert_matches_scalar(self, policy):
        vector = policy.effective_rate_vector(self.BASES, self.WEALTHS)
        scalar = np.array(
            [
                policy.effective_rate(float(base), float(wealth))
                for base, wealth in zip(self.BASES, self.WEALTHS)
            ]
        )
        assert vector.tobytes() == scalar.tobytes()

    def test_fixed_policy_vector(self):
        self._assert_matches_scalar(FixedSpendingPolicy())

    def test_dynamic_policy_vector(self):
        self._assert_matches_scalar(DynamicSpendingPolicy(wealth_threshold=100.0))

    def test_dynamic_policy_vector_with_cap(self):
        self._assert_matches_scalar(
            DynamicSpendingPolicy(wealth_threshold=100.0, max_multiplier=3.0)
        )

    def test_base_class_fallback_uses_scalar_rule(self):
        class Halver(DynamicSpendingPolicy):
            # Inherit only the scalar rule: the base-class vector fallback
            # must route through it element by element.
            def effective_rate(self, base_rate, wealth):
                return 0.5 * float(base_rate)

            effective_rate_vector = SpendingPolicy.effective_rate_vector

        policy = Halver(wealth_threshold=100.0)
        vector = policy.effective_rate_vector(self.BASES, self.WEALTHS)
        assert vector.tobytes() == (0.5 * self.BASES).tobytes()
