"""Tests for the traffic equations (Lemma 1) and utilization vector (Eq. 2)."""

import numpy as np
import pytest

from repro.overlay import ring_topology, scale_free_topology
from repro.queueing import RoutingMatrix, solve_traffic_equations, spectral_radius
from repro.queueing.traffic import normalized_utilizations, stationary_distribution


class TestSpectralRadius:
    def test_stochastic_matrix_has_radius_one(self):
        routing = RoutingMatrix.random_stochastic(25, seed=1)
        assert spectral_radius(routing) == pytest.approx(1.0, abs=1e-8)


class TestStationaryDistribution:
    def test_doubly_stochastic_gives_uniform(self):
        routing = RoutingMatrix.uniform_over_neighbors(ring_topology(6))
        pi = stationary_distribution(routing)
        np.testing.assert_allclose(pi, 1.0 / 6.0, atol=1e-8)

    def test_periodic_chain_converges(self):
        # A two-state swap chain is periodic; damping must still converge.
        pi = stationary_distribution([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_allclose(pi, [0.5, 0.5], atol=1e-8)

    def test_known_two_state_chain(self):
        pi = stationary_distribution([[0.9, 0.1], [0.5, 0.5]])
        np.testing.assert_allclose(pi, [5 / 6, 1 / 6], atol=1e-6)


class TestLemmaOne:
    """Lemma 1: a positive solution of lambda P = lambda always exists."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_stochastic_matrices(self, seed):
        routing = RoutingMatrix.random_stochastic(30, density=0.4, seed=seed)
        solution = solve_traffic_equations(routing)
        assert solution.residual < 1e-6
        assert np.all(solution.arrival_rates > 0)

    def test_scale_free_market(self):
        topology = scale_free_topology(150, seed=5)
        routing = RoutingMatrix.uniform_over_neighbors(topology)
        solution = solve_traffic_equations(routing)
        assert solution.residual < 1e-6
        assert np.all(solution.arrival_rates > 0)
        assert solution.unique_direction

    def test_identity_matrix_has_many_solutions(self):
        solution = solve_traffic_equations(np.eye(4))
        assert solution.residual < 1e-9
        assert not solution.unique_direction

    def test_scaling_invariance(self):
        routing = RoutingMatrix.random_stochastic(10, seed=7)
        solution = solve_traffic_equations(routing)
        scaled = solution.scaled_to_sum(100.0)
        assert scaled.sum() == pytest.approx(100.0)
        residual = np.max(np.abs(scaled @ routing.matrix - scaled))
        assert residual < 1e-6

    def test_scaled_to_max(self):
        routing = RoutingMatrix.random_stochastic(10, seed=8)
        solution = solve_traffic_equations(routing)
        scaled = solution.scaled_to_max(2.5)
        assert scaled.max() == pytest.approx(2.5)

    def test_service_rate_length_validation(self):
        routing = RoutingMatrix.random_stochastic(5, seed=9)
        with pytest.raises(ValueError):
            solve_traffic_equations(routing, service_rates=[1.0, 2.0])

    def test_degree_proportional_for_uniform_routing(self):
        # For uniform neighbour routing, the stationary arrival rates are
        # proportional to peer degree (random-walk stationary distribution).
        topology = scale_free_topology(80, mean_degree=8, seed=10)
        routing = RoutingMatrix.uniform_over_neighbors(topology)
        solution = solve_traffic_equations(routing)
        degrees = np.array([topology.degree(peer) for peer in topology.peers()], dtype=float)
        expected = degrees / degrees.sum() * len(degrees)
        np.testing.assert_allclose(solution.arrival_rates, expected, rtol=1e-6)


class TestNormalizedUtilizations:
    def test_basic_normalisation(self):
        utilizations = normalized_utilizations([1.0, 2.0, 4.0], [2.0, 2.0, 4.0])
        np.testing.assert_allclose(utilizations, [0.5, 1.0, 1.0])

    def test_max_is_one(self):
        rng = np.random.default_rng(3)
        lam = rng.random(20) + 0.1
        mu = rng.random(20) + 0.5
        utilizations = normalized_utilizations(lam, mu)
        assert utilizations.max() == pytest.approx(1.0)
        assert np.all(utilizations > 0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            normalized_utilizations([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            normalized_utilizations([1.0, 1.0], [1.0, 0.0])
        with pytest.raises(ValueError):
            normalized_utilizations([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            normalized_utilizations([-1.0, 1.0], [1.0, 1.0])
