"""Tests for the wealth recorder."""

import numpy as np
import pytest

from repro.p2psim import WealthRecorder


class TestRecording:
    def test_records_series(self):
        recorder = WealthRecorder()
        recorder.record(0.0, [1.0, 1.0, 1.0])
        recorder.record(10.0, [0.0, 1.0, 2.0])
        assert recorder.gini_series.x == [0.0, 10.0]
        assert recorder.gini_series.y[0] == pytest.approx(0.0)
        assert recorder.bankrupt_series.y[1] == pytest.approx(1 / 3)
        assert recorder.mean_wealth_series.y == [1.0, 1.0]
        assert recorder.population_series.y == [3.0, 3.0]

    def test_empty_sample_ignored(self):
        recorder = WealthRecorder()
        recorder.record(1.0, [])
        assert len(recorder.gini_series) == 0

    def test_final_and_stabilized_gini(self):
        recorder = WealthRecorder()
        for time, gini_sample in enumerate([[1, 1], [0, 2], [0, 4]]):
            recorder.record(float(time), gini_sample)
        assert recorder.final_gini() == pytest.approx(0.5)
        assert recorder.stabilized_gini(1.0) == pytest.approx(np.mean([0.0, 0.5, 0.5]))

    def test_gini_at_lookup(self):
        recorder = WealthRecorder()
        recorder.record(0.0, [1, 1])
        recorder.record(10.0, [0, 2])
        assert recorder.gini_at(5.0) == pytest.approx(0.0)
        assert recorder.gini_at(10.0) == pytest.approx(0.5)
        assert recorder.gini_at(-1.0) == pytest.approx(0.0)

    def test_gini_at_without_samples_raises(self):
        with pytest.raises(ValueError):
            WealthRecorder().gini_at(1.0)


class TestSnapshots:
    def test_snapshots_taken_at_requested_times(self):
        recorder = WealthRecorder(snapshot_times=[5.0, 15.0])
        recorder.record(0.0, [3, 1])
        recorder.record(6.0, [2, 2])
        recorder.record(20.0, [4, 0])
        assert set(recorder.snapshots) == {5.0, 15.0}
        np.testing.assert_array_equal(recorder.snapshots[5.0], [2, 2])
        np.testing.assert_array_equal(recorder.snapshots[15.0], [0, 4])

    def test_snapshot_profiles_sorted_by_time(self):
        recorder = WealthRecorder(snapshot_times=[10.0, 2.0])
        recorder.record(3.0, [1, 2])
        recorder.record(12.0, [5, 6])
        profiles = recorder.snapshot_profiles()
        assert len(profiles) == 2
        np.testing.assert_array_equal(profiles[0], [1, 2])
        np.testing.assert_array_equal(profiles[1], [5, 6])


class TestConvergence:
    def test_not_converged_with_few_samples(self):
        recorder = WealthRecorder()
        recorder.record(0.0, [1, 1])
        assert not recorder.has_converged(window=5)

    def test_converged_when_tail_is_flat(self):
        recorder = WealthRecorder()
        for time in range(10):
            recorder.record(float(time), [0, 2])
        assert recorder.has_converged(window=5, tolerance=0.01)

    def test_not_converged_when_drifting(self):
        recorder = WealthRecorder()
        wealths = [[10 - i, 10 + i] for i in range(10)]
        for time, sample in enumerate(wealths):
            recorder.record(float(time), sample)
        assert not recorder.has_converged(window=5, tolerance=0.05)
