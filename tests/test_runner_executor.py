"""Tests for the sweep executor: determinism, caching, and resumption.

The determinism tests pin the subsystem's core contract: a sweep's
aggregate table is byte-identical no matter how many workers execute it
and whether shards come from the cache or from fresh runs.
"""

import pytest

from repro.runner import (
    ArtifactCache,
    ParamGrid,
    SweepSpec,
    aggregate_sweep,
    code_fingerprint,
    run_sweep,
    task_key,
)

# Two configs x three replications of the cheap fig3 point runner: the whole
# sweep takes well under a second even including pool startup.
SPEC = SweepSpec(
    "fig3",
    grid=ParamGrid({"num_peers": [30, 40], "num_samples": [2]}),
    replications=3,
    base_seed=11,
    scale="smoke",
)


def test_serial_and_parallel_results_bit_identical():
    serial = run_sweep(SPEC, jobs=1)
    parallel = run_sweep(SPEC, jobs=3)
    assert serial.executed == parallel.executed == 6
    assert [s.payload for s in serial.shards] == [s.payload for s in parallel.shards]
    assert aggregate_sweep(serial).to_csv() == aggregate_sweep(parallel).to_csv()


def test_shards_ordered_by_config_and_replication():
    report = run_sweep(SPEC, jobs=2)
    observed = [(s.task.config_index, s.task.replication) for s in report.shards]
    assert observed == sorted(observed)


def test_replications_differ_but_configs_reproduce():
    report = run_sweep(SPEC, jobs=1)
    by_config = report.by_config()
    ginis = [shard.result().tables[0].rows[0]["gini"] for shard in by_config[0]]
    assert len(set(ginis)) == len(ginis)  # distinct seeds -> distinct draws
    again = run_sweep(SPEC, jobs=1)
    assert [s.payload for s in again.shards] == [s.payload for s in report.shards]


def test_warm_cache_executes_zero_shards(tmp_path):
    cache = ArtifactCache(tmp_path)
    cold = run_sweep(SPEC, jobs=1, cache=cache)
    assert (cold.executed, cold.cached) == (6, 0)
    warm = run_sweep(SPEC, jobs=2, cache=cache)
    assert (warm.executed, warm.cached) == (0, 6)
    assert aggregate_sweep(warm).to_csv() == aggregate_sweep(cold).to_csv()


def test_interrupted_sweep_resumes_missing_shards_only(tmp_path):
    cache = ArtifactCache(tmp_path)
    reference = run_sweep(SPEC, jobs=1)

    # Simulate an interrupted run: execute the full sweep, then discard the
    # artifacts of the last config (as if the run was killed mid-grid; the
    # executor commits each shard atomically as it completes).
    run_sweep(SPEC, jobs=1, cache=cache)
    code = code_fingerprint()
    dropped = 0
    for task in SPEC.tasks():
        if task.config_index == 1:
            assert cache.discard(task_key(task, code))
            dropped += 1
    assert dropped == 3

    resumed = run_sweep(SPEC, jobs=1, cache=cache)
    assert (resumed.executed, resumed.cached) == (3, 3)
    assert [s.payload for s in resumed.shards] == [s.payload for s in reference.shards]
    assert aggregate_sweep(resumed).to_csv() == aggregate_sweep(reference).to_csv()


def test_partial_prepopulation_resumes(tmp_path):
    # A 1-replication run warms the cache for replication 0 of every config;
    # the 3-replication run then only executes replications 1 and 2.
    cache = ArtifactCache(tmp_path)
    sub = SweepSpec(
        "fig3", grid=SPEC.grid, replications=1, base_seed=SPEC.base_seed, scale=SPEC.scale
    )
    run_sweep(sub, jobs=1, cache=cache)
    full = run_sweep(SPEC, jobs=1, cache=cache)
    assert (full.executed, full.cached) == (4, 2)
    assert aggregate_sweep(full).to_csv() == aggregate_sweep(run_sweep(SPEC, jobs=1)).to_csv()


def test_empty_config_falls_back_to_registry_runner():
    spec = SweepSpec("fig4", replications=2, base_seed=1, scale="smoke")
    report = run_sweep(spec, jobs=1)
    assert report.executed == 2
    assert report.shards[0].result().experiment_id == "fig4"


def test_empty_config_replicates_whole_experiment_not_point_runner():
    # `run fig9 --reps N` must replicate the full figure (all policies),
    # not the point runner's single default grid point.
    spec = SweepSpec("fig9", replications=1, base_seed=0, scale="smoke")
    report = run_sweep(spec, jobs=1)
    assert len(report.shards[0].result().tables[0]) >= 2


def test_failing_shard_does_not_lose_completed_shards(tmp_path):
    cache = ArtifactCache(tmp_path)
    spec = SweepSpec(
        "fig3",
        grid=[{"num_peers": 30, "num_samples": 2}, {"bogus_param": 1}],
        replications=1,
        scale="smoke",
    )
    with pytest.raises(KeyError, match="bogus_param"):
        run_sweep(spec, jobs=2, cache=cache)
    # The valid shard completed and was committed despite the failure, so a
    # corrected re-run resumes from it.
    assert len(cache) == 1


def test_unknown_sweep_parameter_rejected():
    spec = SweepSpec("fig3", grid=[{"bogus_param": 1}], replications=1, scale="smoke")
    with pytest.raises(KeyError, match="bogus_param"):
        run_sweep(spec, jobs=1)


def test_unsweepable_experiment_with_params_rejected():
    # Every registered experiment is sweepable now, so only an unknown id
    # can hit the "not sweepable" path.
    spec = SweepSpec("fig99", grid=[{"x": 1}], replications=1, scale="smoke")
    with pytest.raises(KeyError, match="not sweepable"):
        run_sweep(spec, jobs=1)


def test_progress_callback_reports_execution(tmp_path):
    lines = []
    run_sweep(SPEC, jobs=1, cache=ArtifactCache(tmp_path), progress=lines.append)
    assert any("6 shards" in line for line in lines)
    assert any("executed shard 6/6" in line for line in lines)
