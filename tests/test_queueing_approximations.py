"""Tests for the paper's Eq. (5)-(8) approximations."""

import numpy as np
import pytest
from scipy import stats

from repro.experiments.fig02_lorenz import exact_symmetric_marginal_pmf
from repro.queueing.approximations import (
    approximate_mean_wealth,
    multinomial_marginal_pmf,
    symmetric_marginal_pmf,
    symmetric_zero_probability,
)


class TestMultinomialMarginal:
    def test_is_binomial(self):
        utilizations = [1.0, 0.5, 0.5]
        pmf = multinomial_marginal_pmf(utilizations, queue=0, total_jobs=10)
        expected = stats.binom.pmf(np.arange(11), 10, 0.5)
        np.testing.assert_allclose(pmf, expected)

    def test_sums_to_one(self):
        pmf = multinomial_marginal_pmf([0.3, 0.9, 1.0], queue=2, total_jobs=25)
        assert pmf.sum() == pytest.approx(1.0)

    def test_mean_matches_share(self):
        utilizations = [1.0, 3.0]
        pmf = multinomial_marginal_pmf(utilizations, queue=1, total_jobs=40)
        mean = float(np.dot(np.arange(41), pmf))
        assert mean == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            multinomial_marginal_pmf([], 0, 5)
        with pytest.raises(ValueError):
            multinomial_marginal_pmf([1.0, 0.0], 0, 5)
        with pytest.raises(IndexError):
            multinomial_marginal_pmf([1.0], 3, 5)
        with pytest.raises(ValueError):
            multinomial_marginal_pmf([1.0], 0, -2)


class TestSymmetricMarginal:
    def test_equals_multinomial_with_equal_utilizations(self):
        a = symmetric_marginal_pmf(8, 30)
        b = multinomial_marginal_pmf([1.0] * 8, 0, 30)
        np.testing.assert_allclose(a, b)

    def test_eq8_closed_form(self):
        # Eq. (8): Q{B=b} = ((N-1)/N)^M C(M, b) (N-1)^{-b}.
        num_peers, total = 5, 6
        pmf = symmetric_marginal_pmf(num_peers, total)
        import math

        for b in range(total + 1):
            expected = (
                ((num_peers - 1) / num_peers) ** total
                * math.comb(total, b)
                * (num_peers - 1) ** (-b)
            )
            assert pmf[b] == pytest.approx(expected)

    def test_zero_probability_formula(self):
        assert symmetric_zero_probability(10, 20) == pytest.approx((9 / 10) ** 20)
        assert symmetric_zero_probability(1, 0) == 1.0
        assert symmetric_zero_probability(1, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            symmetric_marginal_pmf(0, 5)
        with pytest.raises(ValueError):
            symmetric_zero_probability(2, -1)


class TestApproximateMeanWealth:
    def test_shares_scale_with_utilization(self):
        means = approximate_mean_wealth([1.0, 1.0, 2.0], 40)
        np.testing.assert_allclose(means, [10.0, 10.0, 20.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            approximate_mean_wealth([1.0, 0.0], 10)


class TestExactSymmetricMarginal:
    def test_sums_to_one(self):
        pmf = exact_symmetric_marginal_pmf(10, 50)
        assert pmf.sum() == pytest.approx(1.0)

    def test_mean_is_average_wealth(self):
        pmf = exact_symmetric_marginal_pmf(10, 50)
        mean = float(np.dot(np.arange(51), pmf))
        assert mean == pytest.approx(5.0, rel=1e-9)

    def test_matches_buzen_for_small_network(self):
        from repro.queueing import ClosedJacksonNetwork

        network = ClosedJacksonNetwork([1.0] * 4, 9)
        np.testing.assert_allclose(
            exact_symmetric_marginal_pmf(4, 9), network.marginal_pmf(0), atol=1e-9
        )

    def test_more_skewed_than_eq8(self):
        from repro.core.metrics import gini_from_pmf

        exact = exact_symmetric_marginal_pmf(50, 500)
        approx = symmetric_marginal_pmf(50, 500)
        assert gini_from_pmf(exact) > gini_from_pmf(approx)
