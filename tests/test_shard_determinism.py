"""Sharded execution must be byte-identical to monolithic execution.

The sharding tentpole's whole contract: ``shards=N`` changes how a round
executes — per-shard kernel sections fanned over an executor, merged in
shard order at the round barrier — and nothing else.  These tests pin
byte-identity for both simulators across shard counts, partitioners,
executor backends, churned populations and narrow dtypes, then climb the
stack: sharding composes with round-block partitioning, and sweep
payloads (the artifacts CI's determinism job compares) are identical with
and without ambient shard overrides.
"""

import json

import numpy as np
import pytest

from repro.core.spending import DynamicSpendingPolicy
from repro.overlay import ChurnConfig
from repro.p2psim import (
    CreditMarketSimulator,
    KernelOptions,
    MarketSimConfig,
    StreamingMarketSimulator,
    StreamingSimConfig,
    UtilizationMode,
)
from repro.runner import ExecutionPlan, execute, shard_overrides
from repro.runner.grid import SweepSpec
from repro.runner.executor import run_sweep


def market_fingerprint(result):
    return (
        result.final_wealths.tobytes(),
        result.spending_rates.tobytes(),
        result.earning_rates.tobytes(),
        result.total_transfers,
        result.joins,
        result.leaves,
        tuple(result.recorder.gini_series.y),
        tuple(result.recorder.bankrupt_series.y),
        tuple(result.recorder.population_series.y),
    )


def streaming_fingerprint(result):
    return (
        result.final_wealths.tobytes(),
        result.spending_rates.tobytes(),
        result.earning_rates.tobytes(),
        result.continuity.tobytes(),
        result.chunks_delivered,
        result.joins,
        result.leaves,
        tuple(result.recorder.gini_series.y),
        tuple(result.recorder.population_series.y),
    )


def market_config(**overrides):
    defaults = dict(
        num_peers=64,
        initial_credits=10.0,
        horizon=240.0,
        step=2.0,
        utilization=UtilizationMode.SYMMETRIC,
        spending_rate_noise=0.05,
        topology_mean_degree=8.0,
        sample_interval=40.0,
        seed=13,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


def streaming_config(**overrides):
    defaults = dict(
        num_peers=36,
        initial_credits=20.0,
        horizon=120.0,
        topology_mean_degree=8.0,
        sample_interval=30.0,
        upload_capacity=2,
        seed=17,
    )
    defaults.update(overrides)
    return StreamingSimConfig(**defaults)


def sharded_options(shards, partitioner="overlay", backend="serial"):
    return KernelOptions(shards=shards, partitioner=partitioner, shard_backend=backend)


class TestMarketShardIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_shard_counts_byte_identical(self, shards):
        baseline = CreditMarketSimulator(market_config()).run()
        sharded = CreditMarketSimulator(
            market_config(options=sharded_options(shards))
        ).run()
        assert market_fingerprint(baseline) == market_fingerprint(sharded)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_byte_identical(self, backend):
        baseline = CreditMarketSimulator(market_config()).run()
        sharded = CreditMarketSimulator(
            market_config(options=sharded_options(4, backend=backend))
        ).run()
        assert market_fingerprint(baseline) == market_fingerprint(sharded)

    @pytest.mark.parametrize("partitioner", ["overlay", "hash"])
    def test_partitioners_byte_identical_under_churn(self, partitioner):
        shape = dict(
            churn=ChurnConfig(arrival_rate=0.4, mean_lifespan=90.0),
            spending_policy=DynamicSpendingPolicy(wealth_threshold=12.0),
            seed=29,
        )
        baseline = CreditMarketSimulator(market_config(**shape)).run()
        sharded = CreditMarketSimulator(
            market_config(options=sharded_options(4, partitioner=partitioner), **shape)
        ).run()
        assert baseline.joins > 0  # churn actually happened
        assert market_fingerprint(baseline) == market_fingerprint(sharded)

    def test_float32_sharded_matches_float32_monolithic(self):
        baseline = CreditMarketSimulator(
            market_config(options=KernelOptions(dtype="float32"))
        ).run()
        sharded = CreditMarketSimulator(
            market_config(
                options=KernelOptions(dtype="float32", shards=4, shard_backend="serial")
            )
        ).run()
        assert baseline.final_wealths.dtype == np.float32
        assert market_fingerprint(baseline) == market_fingerprint(sharded)

    def test_loop_kernel_rejected(self):
        config = market_config(options=KernelOptions(kernel="loop"))
        with shard_overrides(shards=2):
            with pytest.raises(ValueError, match="vectorized"):
                CreditMarketSimulator(config)


class TestStreamingShardIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_shard_counts_byte_identical(self, shards):
        baseline = StreamingMarketSimulator(streaming_config()).run()
        sharded = StreamingMarketSimulator(
            streaming_config(options=sharded_options(shards))
        ).run()
        assert streaming_fingerprint(baseline) == streaming_fingerprint(sharded)

    @pytest.mark.parametrize("policy", ["cheapest", "least-loaded", "availability"])
    def test_supplier_policies_byte_identical(self, policy):
        shape = dict(supplier_choice=policy, seed=23)
        baseline = StreamingMarketSimulator(streaming_config(**shape)).run()
        sharded = StreamingMarketSimulator(
            streaming_config(options=sharded_options(4, backend="thread"), **shape)
        ).run()
        assert streaming_fingerprint(baseline) == streaming_fingerprint(sharded)

    def test_churned_swarm_byte_identical(self):
        shape = dict(churn=ChurnConfig(arrival_rate=0.3, mean_lifespan=70.0), seed=23)
        baseline = StreamingMarketSimulator(streaming_config(**shape)).run()
        sharded = StreamingMarketSimulator(
            streaming_config(options=sharded_options(4, partitioner="hash"), **shape)
        ).run()
        assert baseline.joins > 0
        assert streaming_fingerprint(baseline) == streaming_fingerprint(sharded)


class TestPlanComposition:
    def test_shards_compose_with_round_blocks(self):
        config = market_config()
        baseline = CreditMarketSimulator(config).run()
        combined = execute(
            config, ExecutionPlan(rounds_per_block=30, shards=2, shard_backend="serial")
        )
        assert market_fingerprint(baseline) == market_fingerprint(combined)

    def test_execute_with_plan_shards_matches_run(self):
        config = streaming_config()
        baseline = StreamingMarketSimulator(config).run()
        planned = execute(config, ExecutionPlan(shards=4, shard_backend="serial"))
        assert streaming_fingerprint(baseline) == streaming_fingerprint(planned)

    def test_ambient_overrides_do_not_change_results(self):
        config = market_config()
        baseline = CreditMarketSimulator(config).run()
        with shard_overrides(shards=4, shard_backend="serial"):
            sharded = CreditMarketSimulator(config).run()
        assert market_fingerprint(baseline) == market_fingerprint(sharded)


def _payloads(spec, plan=None):
    report = run_sweep(spec, plan=plan)
    return json.dumps(
        [shard.payload for shard in report.shards], sort_keys=True
    )


class TestSweepPayloadIdentity:
    """Sharded sweep payloads are the artifacts CI's determinism job diffs."""

    @pytest.mark.parametrize("experiment_id", ["fig7", "fig11"])
    def test_smoke_payloads_identical_with_shards(self, experiment_id):
        spec = SweepSpec(experiment_id, replications=2, base_seed=5, scale="smoke")
        baseline = _payloads(spec)
        sharded = _payloads(
            spec,
            plan=ExecutionPlan(shards=4, partitioner="overlay", shard_backend="serial"),
        )
        assert baseline == sharded

    def test_hash_partitioner_payloads_identical(self):
        spec = SweepSpec("fig7", replications=1, base_seed=3, scale="smoke")
        assert _payloads(spec) == _payloads(
            spec, plan=ExecutionPlan(shards=2, partitioner="hash")
        )

    def test_shards_and_intra_jobs_payloads_identical(self):
        spec = SweepSpec("fig7", replications=1, base_seed=7, scale="smoke")
        assert _payloads(spec) == _payloads(
            spec, plan=ExecutionPlan(intra_jobs=2, shards=2, shard_backend="serial")
        )
