"""Tests for the content-addressed artifact cache and result serialization."""

import json


from repro.experiments.common import ExperimentResult
from repro.runner import (
    ArtifactCache,
    SweepSpec,
    code_fingerprint,
    payload_to_result,
    result_to_payload,
    task_key,
)
from repro.utils.records import ResultTable, SeriesRecord


def _task(**config):
    spec = SweepSpec("fig3", grid=[config], replications=1, base_seed=1, scale="smoke")
    return spec.tasks()[0]


def _result():
    table = ResultTable(title="t", metadata={"seed": 1})
    table.add_row(setting="a", gini=0.5, count=3)
    series = SeriesRecord(label="s", x=[0.0, 1.0], y=[0.1, 0.2], metadata={"k": "v"})
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig",
        tables=[table],
        series=[series],
        metadata={"scale": "smoke"},
    )


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        result = _result()
        restored = payload_to_result(result_to_payload(result))
        assert restored.experiment_id == result.experiment_id
        assert restored.title == result.title
        assert restored.metadata == result.metadata
        assert restored.tables[0].title == "t"
        assert restored.tables[0].rows[0].as_dict() == {"setting": "a", "gini": 0.5, "count": 3}
        assert restored.tables[0].columns() == ["setting", "gini", "count"]
        assert restored.series[0].label == "s"
        assert restored.series[0].points() == [(0.0, 0.1), (1.0, 0.2)]

    def test_payload_is_json_safe(self):
        import numpy as np

        table = ResultTable(title="t")
        table.add_row(value=np.float64(0.25), count=np.int64(2), pair=(1, 2))
        result = ExperimentResult(experiment_id="x", title="x", tables=[table])
        text = json.dumps(result_to_payload(result))
        restored = payload_to_result(json.loads(text))
        assert restored.tables[0].rows[0].as_dict() == {"value": 0.25, "count": 2, "pair": [1, 2]}


class TestTaskKey:
    def test_key_is_stable(self):
        assert task_key(_task(num_peers=30), "v1") == task_key(_task(num_peers=30), "v1")

    def test_key_changes_with_config(self):
        assert task_key(_task(num_peers=30), "v1") != task_key(_task(num_peers=31), "v1")

    def test_key_changes_with_code_version(self):
        # Editing library code must invalidate previously cached artifacts.
        assert task_key(_task(num_peers=30), "v1") != task_key(_task(num_peers=30), "v2")

    def test_key_changes_with_seed_and_scale(self):
        base = _task(num_peers=30)
        reseeded = SweepSpec(
            "fig3", grid=[{"num_peers": 30}], replications=1, base_seed=2, scale="smoke"
        ).tasks()[0]
        rescaled = SweepSpec(
            "fig3", grid=[{"num_peers": 30}], replications=1, base_seed=1, scale="default"
        ).tasks()[0]
        assert task_key(base, "v1") != task_key(reseeded, "v1")
        assert task_key(base, "v1") != task_key(rescaled, "v1")

    def test_code_fingerprint_is_hex_and_cached(self):
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)
        assert code_fingerprint() == fingerprint


class TestArtifactCache:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = task_key(_task(num_peers=30), "v1")
        assert cache.load(key) is None
        payload = result_to_payload(_result())
        cache.store(key, payload)
        assert cache.contains(key)
        assert cache.load(key) == json.loads(json.dumps(payload))
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}
        assert len(cache) == 1

    def test_corrupt_artifact_counts_as_miss_and_is_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = task_key(_task(num_peers=30), "v1")
        cache.store(key, {"experiment_id": "x"})
        path = cache.root / key[:2] / f"{key}.json"
        path.write_text("{truncated", encoding="utf-8")
        assert cache.load(key) is None
        assert not path.exists()

    def test_discard(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = task_key(_task(num_peers=30), "v1")
        assert not cache.discard(key)
        cache.store(key, {"experiment_id": "x"})
        assert cache.discard(key)
        assert not cache.contains(key)

    def test_store_round_trip_preserves_column_order(self, tmp_path):
        # Regression: artifacts must not be stored with sorted keys, or a
        # warm-cache run would reorder table columns vs. the cold run.
        cache = ArtifactCache(tmp_path)
        payload = result_to_payload(_result())
        cache.store("ab" * 32, payload)
        restored = payload_to_result(cache.load("ab" * 32))
        assert restored.tables[0].columns() == ["setting", "gini", "count"]
