"""Tests for statistics helpers."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    RunningStat,
    confidence_interval,
    describe,
    geometric_mean,
    relative_error,
)


class TestRunningStat:
    def test_mean_and_variance_match_numpy(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(3.0, 2.0, size=500)
        stat = RunningStat()
        stat.extend(samples)
        assert stat.mean == pytest.approx(float(samples.mean()), rel=1e-9)
        assert stat.variance == pytest.approx(float(samples.var(ddof=1)), rel=1e-9)
        assert stat.std == pytest.approx(float(samples.std(ddof=1)), rel=1e-9)

    def test_empty_stat_defaults(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_min_max_tracking(self):
        stat = RunningStat()
        stat.extend([3.0, -1.0, 7.0])
        assert stat.minimum == -1.0
        assert stat.maximum == 7.0

    def test_single_observation_has_zero_variance(self):
        stat = RunningStat()
        stat.push(5.0)
        assert stat.variance == 0.0

    def test_merge_equivalent_to_combined_stream(self):
        rng = np.random.default_rng(2)
        a_samples = rng.random(100)
        b_samples = rng.random(50) + 5.0
        a, b = RunningStat(), RunningStat()
        a.extend(a_samples)
        b.extend(b_samples)
        merged = a.merge(b)
        combined = np.concatenate([a_samples, b_samples])
        assert merged.count == 150
        assert merged.mean == pytest.approx(float(combined.mean()))
        assert merged.variance == pytest.approx(float(combined.var(ddof=1)))

    def test_merge_with_empty(self):
        a = RunningStat()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStat())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestConfidenceInterval:
    def test_contains_mean(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = confidence_interval(samples)
        assert low < 3.0 < high

    def test_wider_at_higher_confidence(self):
        samples = list(np.random.default_rng(3).normal(size=50))
        low95, high95 = confidence_interval(samples, 0.95)
        low99, high99 = confidence_interval(samples, 0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_single_sample_degenerate(self):
        assert confidence_interval([4.0]) == (4.0, 4.0)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_z_values_match_normal_quantiles_to_1e6(self):
        # The Winitzki approximation alone is ~1e-3 off; the Newton-refined
        # inverse must reproduce the standard normal quantiles to 1e-6.
        from repro.utils.stats import _erfinv

        for confidence, reference_z in (
            (0.95, 1.959963984540054),
            (0.99, 2.5758293035489004),
        ):
            z = math.sqrt(2.0) * _erfinv(confidence)
            assert abs(z - reference_z) < 1e-6

    def test_erfinv_roundtrips_erf(self):
        from repro.utils.stats import _erfinv

        assert _erfinv(0.0) == 0.0
        for value in (-0.999, -0.5, -0.1, 0.1, 0.5, 0.9, 0.99, 0.999):
            assert math.erf(_erfinv(value)) == pytest.approx(value, abs=1e-9)

    def test_ci_width_uses_refined_z(self):
        # Two samples: std = sqrt(2), sqrt(n) = sqrt(2), so the 99%
        # half-width collapses to exactly z(99%).
        samples = [-1.0, 1.0]
        low, high = confidence_interval(samples, 0.99)
        assert (high - low) / 2.0 == pytest.approx(2.5758293035489004, abs=1e-6)


class TestDescribe:
    def test_fields_present_and_consistent(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])


class TestGeometricMean:
    def test_matches_closed_form(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_reference_returns_absolute(self):
        assert relative_error(0.3, 0.0) == pytest.approx(0.3)

    def test_exact_match_is_zero(self):
        assert relative_error(5.0, 5.0) == 0.0
