"""Tests for the project-wide analyzer: the pass-1 model (symbol tables,
import/call graphs, incremental cache) and the pass-2 SEED/THREAD/SWEEP
rule families, each with a planted violation and a clean counterpart."""

import textwrap

import pytest

from repro.analysis import analyze_paths
from repro.analysis.project import (
    ModuleSummary,
    ProjectCache,
    ProjectModel,
    module_name_for,
)

MINI_PACKAGE = {
    "src/repro/mini/__init__.py": """
        from repro.mini.core import compute
        """,
    "src/repro/mini/core.py": """
        from repro.mini.util import helper

        def compute():
            return helper()
        """,
    "src/repro/mini/util.py": """
        def helper():
            return 1
        """,
    "src/repro/mini/driver.py": """
        from repro.mini import compute

        def run():
            return compute()
        """,
}


def write_tree(root, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def build_model(root, files, cached=None):
    write_tree(root, files)
    pairs = [
        (rel, textwrap.dedent(source)) for rel, source in sorted(files.items())
    ]
    return ProjectModel.build(pairs, cached=cached)


def active_rules(root, files, paths=None):
    write_tree(root, files)
    report = analyze_paths([str(root / p) for p in (paths or ["src"])])
    return sorted({f.rule for f in report.active}), report


class TestModuleNames:
    def test_source_root_is_stripped(self):
        assert module_name_for("src/repro/runner/grid.py") == "repro.runner.grid"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/mini/__init__.py") == "repro.mini"

    def test_paths_outside_src_keep_their_shape(self):
        assert module_name_for("tests/test_cli.py") == "tests.test_cli"
        assert module_name_for("examples/quickstart.py") == "examples.quickstart"


class TestProjectModel:
    def test_import_graph_edges(self, tmp_path):
        model = build_model(tmp_path, MINI_PACKAGE)
        graph = model.import_graph
        assert "repro.mini.util" in graph["repro.mini.core"]
        assert "repro.mini" in graph["repro.mini.driver"]
        assert "repro.mini.core" in graph["repro.mini"]

    def test_call_graph_resolves_through_reexport(self, tmp_path):
        # driver calls `compute`, imported from the package __init__, which
        # re-exports it from repro.mini.core — the edge lands on the origin.
        model = build_model(tmp_path, MINI_PACKAGE)
        assert "repro.mini.core:compute" in model.call_graph["repro.mini.driver:run"]
        assert "repro.mini.util:helper" in model.call_graph["repro.mini.core:compute"]

    def test_reverse_importers_close_transitively(self, tmp_path):
        model = build_model(tmp_path, MINI_PACKAGE)
        affected = model.reverse_importers({"src/repro/mini/util.py"})
        # util changed: core imports it, __init__ re-exports core, driver
        # imports the package — all four must be re-checked.
        assert affected == set(MINI_PACKAGE)

    def test_cache_hit_and_invalidation(self, tmp_path):
        first = build_model(tmp_path, MINI_PACKAGE)
        assert first.cache_misses == len(MINI_PACKAGE)
        # Unchanged content: everything replays from the cached summaries.
        warm = build_model(tmp_path, MINI_PACKAGE, cached=first.summaries)
        assert (warm.cache_hits, warm.cache_misses) == (len(MINI_PACKAGE), 0)
        # A transitive dependency changes: only it is re-parsed, and the
        # reverse-importer closure names everything that must be re-run.
        edited = dict(MINI_PACKAGE)
        edited["src/repro/mini/util.py"] = """
            def helper():
                return 2
            """
        changed = build_model(tmp_path, edited, cached=first.summaries)
        assert changed.cache_misses == 1
        assert changed.changed_paths == {"src/repro/mini/util.py"}
        assert changed.reverse_importers(changed.changed_paths) == set(MINI_PACKAGE)

    def test_disk_cache_round_trip_and_corruption(self, tmp_path):
        model = build_model(tmp_path, MINI_PACKAGE)
        cache = ProjectCache(tmp_path / "cache")
        cache.save(model.summaries)
        loaded = cache.load()
        assert set(loaded) == set(model.summaries)
        reloaded = loaded["src/repro/mini/core.py"]
        assert isinstance(reloaded, ModuleSummary)
        assert reloaded.functions["compute"].calls
        # A corrupt cache file is a cold start, never an error.
        cache.path.write_text("{not json", encoding="utf-8")
        assert cache.load() == {}


class TestSeedRules:
    def test_module_global_rng_feeding_an_experiment_fires(self, tmp_path):
        rules, report = active_rules(
            tmp_path,
            {
                "src/repro/experiments/figx.py": """
                    import numpy as np

                    _RNG = np.random.default_rng(123)

                    def run_point(scale="full", seed=0):
                        return float(_RNG.normal())
                    """
            },
        )
        assert "SEED002" in rules
        (escape,) = [f for f in report.active if f.rule == "SEED002"]
        assert "module global" in escape.message

    def test_unseeded_generator_in_simulation_fires(self, tmp_path):
        rules, _ = active_rules(
            tmp_path,
            {
                "src/repro/p2psim/sampler.py": """
                    import numpy as np

                    def sample(n):
                        rng = np.random.default_rng()
                        return rng.normal(size=n)
                    """
            },
        )
        assert "SEED001" in rules

    def test_seed_flowing_through_call_hops_is_clean(self, tmp_path):
        # The seed is a literal at the construction site, but it flows
        # through a local helper that returns derive_seed(...) — the
        # cross-module closure must sanction it.
        rules, _ = active_rules(
            tmp_path,
            {
                "src/repro/mini/seeds.py": """
                    from repro.utils.rng import derive_seed

                    def child(base, label):
                        return derive_seed(base, label)
                    """,
                "src/repro/mini/sim.py": """
                    import numpy as np

                    from repro.mini.seeds import child

                    def run(base_seed):
                        rng = np.random.default_rng(child(base_seed, "sim"))
                        return rng.normal()
                    """,
            },
        )
        assert "SEED001" not in rules
        assert "SEED002" not in rules

    def test_injected_parameter_and_config_field_are_clean(self, tmp_path):
        rules, _ = active_rules(
            tmp_path,
            {
                "src/repro/mini/sim.py": """
                    import numpy as np

                    def run(seed, config):
                        a = np.random.default_rng(seed)
                        b = np.random.default_rng(config.seed)
                        return a.normal() + b.normal()
                    """
            },
        )
        assert "SEED001" not in rules

    def test_default_argument_generator_fires(self, tmp_path):
        rules, report = active_rules(
            tmp_path,
            {
                "src/repro/mini/sim.py": """
                    import numpy as np

                    def run(rng=np.random.default_rng(7)):
                        return rng.normal()
                    """
            },
        )
        assert "SEED002" in rules
        (escape,) = [f for f in report.active if f.rule == "SEED002"]
        assert "default argument" in escape.message


class TestThreadRules:
    SERVICE = """
        import threading

        class Service:
            def __init__(self):
                self._jobs = {{}}
                self._lock = threading.Lock()

            def submit(self, job):
                {submit_body}

            def get(self, job):
                with self._lock:
                    return self._jobs.get(job)

            def start(self):
                threading.Thread(target=self._run, daemon=True).start()

            def _run(self):
                pass
        """

    def test_unlocked_dict_mutated_from_worker_class_fires(self, tmp_path):
        rules, report = active_rules(
            tmp_path,
            {
                "src/repro/obs/servefix.py": self.SERVICE.format(
                    submit_body="self._jobs[job] = 1"
                )
            },
        )
        assert "THREAD001" in rules
        (finding,) = [f for f in report.active if f.rule == "THREAD001"]
        assert "_jobs" in finding.message and "Service.submit" in finding.message

    def test_locked_access_on_every_path_is_clean(self, tmp_path):
        rules, _ = active_rules(
            tmp_path,
            {
                "src/repro/obs/servefix.py": self.SERVICE.format(
                    submit_body="""
                with self._lock:
                    self._jobs[job] = 1
                """.strip()
                )
            },
        )
        assert "THREAD001" not in rules

    def test_emitter_captured_into_thread_closure_fires(self, tmp_path):
        rules, _ = active_rules(
            tmp_path,
            {
                "src/repro/runner/spawnfix.py": """
                    import threading

                    from repro.obs import get_emitter

                    def launch():
                        emitter = get_emitter()

                        def work():
                            emitter.counter("jobs")

                        threading.Thread(target=work).start()
                    """
            },
        )
        assert "THREAD002" in rules

    def test_emitter_resolved_inside_the_thread_is_clean(self, tmp_path):
        rules, _ = active_rules(
            tmp_path,
            {
                "src/repro/runner/spawnfix.py": """
                    import threading

                    from repro.obs import get_emitter

                    def launch():
                        def work():
                            get_emitter().counter("jobs")

                        threading.Thread(target=work).start()
                    """
            },
        )
        assert "THREAD002" not in rules


SWEEP_FIXTURE = {
    "src/repro/experiments/figy.py": """
        SWEEP_PARAMS = ("alpha", "beta")

        def run_point(alpha=1.0, beta=2.0, scale="full", seed=0):
            return {"alpha": alpha, "beta": beta}
        """,
    "src/repro/experiments/registry.py": """
        from repro.experiments import figy

        SWEEPS = {
            "figy": {"runner": figy.run_point, "params": figy.SWEEP_PARAMS},
        }
        """,
}


class TestSweepRules:
    def test_matching_registry_is_clean(self, tmp_path):
        rules, _ = active_rules(tmp_path, SWEEP_FIXTURE)
        assert "SWEEP001" not in rules

    def test_renamed_axis_fires_both_directions(self, tmp_path):
        drifted = dict(SWEEP_FIXTURE)
        # The runner renamed `beta` to `gamma` but the declaration did not.
        drifted["src/repro/experiments/figy.py"] = """
            SWEEP_PARAMS = ("alpha", "beta")

            def run_point(alpha=1.0, gamma=2.0, scale="full", seed=0):
                return {"alpha": alpha, "gamma": gamma}
            """
        rules, report = active_rules(tmp_path, drifted)
        assert "SWEEP001" in rules
        messages = [f.message for f in report.active if f.rule == "SWEEP001"]
        assert any("beta" in m and "does not accept" in m for m in messages)
        assert any("gamma" in m and "not declared" in m for m in messages)

    def test_scenario_with_undeclared_axis_fires(self, tmp_path):
        files = dict(SWEEP_FIXTURE)
        files["src/repro/runner/bundles.py"] = """
            from repro.runner.grid import ParamGrid, SweepSpec

            def scenario():
                return SweepSpec("figy", ParamGrid({"alpha": [1, 2], "delta": [3]}))
            """
        rules, report = active_rules(tmp_path, files)
        assert "SWEEP002" in rules
        (finding,) = [f for f in report.active if f.rule == "SWEEP002"]
        assert "delta" in finding.message

    def test_scenario_over_declared_axes_is_clean(self, tmp_path):
        files = dict(SWEEP_FIXTURE)
        files["src/repro/runner/bundles.py"] = """
            from repro.runner.grid import ParamGrid, SweepSpec

            def scenario():
                return SweepSpec("figy", ParamGrid({"alpha": [1, 2], "beta": [3]}))
            """
        rules, _ = active_rules(tmp_path, files)
        assert "SWEEP002" not in rules

    def test_unregistered_experiment_id_fires(self, tmp_path):
        files = dict(SWEEP_FIXTURE)
        files["src/repro/runner/bundles.py"] = """
            from repro.runner.grid import ParamGrid, SweepSpec

            def scenario():
                return SweepSpec("nonesuch", ParamGrid({"alpha": [1]}))
            """
        rules, report = active_rules(tmp_path, files)
        assert "SWEEP002" in rules
        (finding,) = [f for f in report.active if f.rule == "SWEEP002"]
        assert "nonesuch" in finding.message


class TestProjectFindingSuppression:
    def test_noqa_suppresses_project_findings(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/p2psim/sampler.py": """
                    import numpy as np

                    def sample(n):
                        rng = np.random.default_rng()  # repro: noqa SEED001 -- demo fixture
                        return rng.normal(size=n)
                    """
            },
        )
        report = analyze_paths([str(tmp_path / "src")])
        assert not [f for f in report.active if f.rule == "SEED001"]
        assert [f for f in report.suppressed if f.rule == "SEED001"]
        # And the suppression counts as used: no NOQA002.
        assert not [f for f in report.active if f.rule == "NOQA002"]
