"""Tests for the ``repro.obs`` telemetry subsystem.

Covers the emitter/sink core (aggregation, span nesting, JSONL
round-trips, the disabled no-op contract) and the two integration
properties the instrumentation must uphold: telemetry is *strictly
observational* (instrumented simulator runs are byte-identical to
uninstrumented ones) and the runner/cache/checkpoint layers emit their
lifecycle events through the active emitter.
"""

import numpy as np

from repro.obs import (
    DISABLED,
    CallbackSink,
    JSONLSink,
    MemorySink,
    MetricsEmitter,
    get_emitter,
    use_emitter,
)
from repro.p2psim import (
    CreditMarketSimulator,
    KernelOptions,
    MarketSimConfig,
    StreamingMarketSimulator,
    StreamingSimConfig,
    UtilizationMode,
)
from repro.runner import ArtifactCache, ParamGrid, SweepSpec, run_sweep


def _market_config(kernel="vectorized", rounds=40):
    return MarketSimConfig(
        num_peers=30,
        initial_credits=50.0,
        horizon=float(rounds),
        step=1.0,
        utilization=UtilizationMode.ASYMMETRIC,
        sample_interval=5.0,
        options=KernelOptions(kernel=kernel),
        seed=7,
    )


def _streaming_config(kernel="vectorized", ticks=30):
    return StreamingSimConfig(
        num_peers=30,
        initial_credits=80.0,
        horizon=float(ticks),
        sample_interval=5.0,
        options=KernelOptions(kernel=kernel),
        seed=7,
    )


class TestEmitterAggregation:
    def test_counters_sum_by_name(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink])
        emitter.counter("cache.hit")
        emitter.counter("cache.hit", 2)
        emitter.counter("cache.miss")
        assert sink.counters() == {"cache.hit": 3.0, "cache.miss": 1.0}

    def test_gauges_keep_last_value(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink])
        emitter.gauge("steps_per_second", 100.0)
        emitter.gauge("steps_per_second", 250.0)
        assert sink.gauges() == {"steps_per_second": 250.0}

    def test_points_build_series_in_order(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink])
        emitter.point("gini", 0.0, 0.1)
        emitter.point("gini", 1.0, 0.2)
        assert sink.series() == {"gini": {"x": [0.0, 1.0], "y": [0.1, 0.2]}}

    def test_marks_carry_fields(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink])
        emitter.mark("sweep.start", shards=4)
        (mark,) = sink.marks()
        assert mark["name"] == "sweep.start"
        assert mark["fields"] == {"shards": 4}

    def test_add_sink_returns_sink(self):
        emitter = MetricsEmitter()
        sink = emitter.add_sink(MemorySink())
        emitter.counter("x")
        assert sink.counters() == {"x": 1.0}


class TestSpans:
    def test_nested_spans_record_depth_and_parent(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink])
        with emitter.span("outer"):
            with emitter.span("inner"):
                pass
        inner, outer = sink.span_events()  # exit order: inner first
        assert (inner["name"], inner["depth"], inner["parent"]) == ("inner", 1, "outer")
        assert (outer["name"], outer["depth"], outer["parent"]) == ("outer", 0, None)
        assert 0.0 <= inner["duration"] <= outer["duration"]

    def test_timing_uses_current_stack(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink])
        with emitter.span("outer"):
            emitter.timing("manual", 0.125)
        manual = sink.span_events()[0]
        assert (manual["name"], manual["depth"], manual["parent"]) == ("manual", 1, "outer")
        assert manual["duration"] == 0.125
        assert sink.spans()["manual"] == {
            "count": 1.0, "total": 0.125, "max": 0.125, "mean": 0.125,
        }


class TestDisabledNoop:
    def test_disabled_emitter_emits_nothing_even_with_sinks(self):
        sink = MemorySink()
        emitter = MetricsEmitter(sinks=[sink], enabled=False)
        emitter.counter("a")
        emitter.gauge("b", 1.0)
        emitter.point("c", 0.0, 0.0)
        emitter.mark("d")
        emitter.timing("e", 1.0)
        with emitter.span("f"):
            pass
        assert sink.events == []

    def test_disabled_span_is_the_shared_noop(self):
        assert DISABLED.span("a") is DISABLED.span("b")

    def test_default_active_emitter_is_disabled(self):
        assert get_emitter() is DISABLED
        assert not get_emitter().enabled

    def test_use_emitter_scopes_installation(self):
        emitter = MetricsEmitter(sinks=[MemorySink()])
        with use_emitter(emitter):
            assert get_emitter() is emitter
        assert get_emitter() is DISABLED


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        memory = MemorySink()
        with JSONLSink(path) as jsonl:
            emitter = MetricsEmitter(sinks=[memory, jsonl])
            emitter.counter("hits", 2)
            emitter.gauge("rate", 3.5)
            emitter.point("gini", 1.0, 0.25)
            emitter.mark("start", jobs=1)
            with emitter.span("work"):
                pass
        assert JSONLSink.read(path) == memory.events

    def test_callback_sink_forwards_every_event(self):
        seen = []
        emitter = MetricsEmitter(sinks=[CallbackSink(seen.append)])
        emitter.counter("x")
        emitter.mark("y")
        assert [event["type"] for event in seen] == ["counter", "mark"]


class TestSimulatorTelemetry:
    def test_market_run_is_byte_identical_under_telemetry(self):
        plain = CreditMarketSimulator(_market_config())
        plain.advance_rounds(40)

        sink = MemorySink()
        observed = CreditMarketSimulator(_market_config())
        with use_emitter(MetricsEmitter(sinks=[sink])):
            observed.advance_rounds(40)

        assert observed._balance.tobytes() == plain._balance.tobytes()
        assert observed.recorder.gini_series.y == plain.recorder.gini_series.y
        # The sink's live series mirror the recorder exactly.
        series = sink.series()
        assert series["market.gini"]["x"] == observed.recorder.gini_series.x
        assert series["market.gini"]["y"] == observed.recorder.gini_series.y
        assert series["market.population"]["y"] == observed.recorder.population_series.y
        assert sink.gauges()["market.steps_per_second"] > 0.0
        kernel = sink.spans()["market.kernel.vectorized"]
        assert 1 <= kernel["count"] <= 40

    def test_streaming_run_is_byte_identical_under_telemetry(self):
        plain = StreamingMarketSimulator(_streaming_config())
        plain.advance_rounds(30)

        sink = MemorySink()
        observed = StreamingMarketSimulator(_streaming_config())
        with use_emitter(MetricsEmitter(sinks=[sink])):
            observed.advance_rounds(30)

        assert observed._balance.tobytes() == plain._balance.tobytes()
        assert observed.chunks_delivered == plain.chunks_delivered
        assert observed.recorder.gini_series.y == plain.recorder.gini_series.y
        series = sink.series()
        assert series["streaming.gini"]["x"] == observed.recorder.gini_series.x
        assert series["streaming.gini"]["y"] == observed.recorder.gini_series.y
        assert sink.gauges()["streaming.ticks_per_second"] > 0.0
        assert sink.spans()["streaming.tick"]["count"] == 30

    def test_streaming_kernel_span_nests_inside_tick_span(self):
        sink = MemorySink()
        simulator = StreamingMarketSimulator(_streaming_config(ticks=10))
        with use_emitter(MetricsEmitter(sinks=[sink])):
            simulator.advance_rounds(10)
        kernel_events = [
            e for e in sink.span_events() if e["name"] == "streaming.kernel.vectorized"
        ]
        tick_events = [e for e in sink.span_events() if e["name"] == "streaming.tick"]
        assert len(kernel_events) == len(tick_events) == 10
        for kernel, tick in zip(kernel_events, tick_events):
            assert (kernel["depth"], kernel["parent"]) == (1, "streaming.tick")
            assert (tick["depth"], tick["parent"]) == (0, None)
            assert 0.0 <= kernel["duration"] <= tick["duration"]


class TestRunnerTelemetry:
    SPEC = SweepSpec(
        "fig7",
        grid=ParamGrid({"average_wealth": [8]}),
        replications=1,
        base_seed=3,
        scale="smoke",
    )

    def test_sweep_emits_lifecycle_cache_and_simulator_events(self, tmp_path):
        cold_sink = MemorySink()
        with use_emitter(MetricsEmitter(sinks=[cold_sink])):
            run_sweep(self.SPEC, jobs=1, cache=ArtifactCache(tmp_path))
        counters = cold_sink.counters()
        assert counters["runner.shard.executed"] == 1.0
        assert counters["cache.miss"] == 1.0
        assert counters["cache.store"] == 1.0
        assert "cache.hit" not in counters
        mark_names = [mark["name"] for mark in cold_sink.marks()]
        assert mark_names[0] == "runner.sweep.start"
        assert "runner.shard.committed" in mark_names
        assert mark_names[-1] == "runner.sweep.done"
        assert cold_sink.gauges()["runner.sweep.duration"] > 0.0
        # jobs=1 executes the shard in-process: simulator series stream too.
        assert len(cold_sink.series()["market.gini"]["x"]) > 0

        warm_sink = MemorySink()
        with use_emitter(MetricsEmitter(sinks=[warm_sink])):
            run_sweep(self.SPEC, jobs=1, cache=ArtifactCache(tmp_path))
        warm = warm_sink.counters()
        assert warm["cache.hit"] == 1.0
        assert warm["runner.shard.cached"] == 1.0
        assert "runner.shard.executed" not in warm

    def test_partitioned_sweep_times_checkpoint_saves(self, tmp_path):
        sink = MemorySink()
        with use_emitter(MetricsEmitter(sinks=[sink])):
            run_sweep(
                self.SPEC, jobs=1, intra_jobs=2, cache=ArtifactCache(tmp_path)
            )
        spans = sink.spans()
        # A two-block in-process chain saves at least the boundary checkpoint.
        assert spans["checkpoint.save"]["count"] >= 1
        assert spans["checkpoint.save"]["total"] > 0.0

    def test_resumed_chain_times_checkpoint_restore(self, tmp_path):
        from repro.runner.executor import _execute_chain_step

        task = self.SPEC.tasks()[0]
        sink = MemorySink()
        with use_emitter(MetricsEmitter(sinks=[sink])):
            # Budgeted invocations mirror the pool scheduler: the first
            # runs block 1 and checkpoints, the second restores that
            # checkpoint and finishes the shard.
            assert _execute_chain_step(task.to_payload(), 2, str(tmp_path)) is None
            assert _execute_chain_step(task.to_payload(), 2, str(tmp_path)) is not None
        spans = sink.spans()
        assert spans["checkpoint.save"]["count"] >= 1
        assert spans["checkpoint.restore"]["count"] >= 1


class TestRecorderNdarrayInput:
    def test_ndarray_samples_are_never_iterated(self):
        # Regression guard: `record` used to round-trip every sample
        # through list(), iterating the array element-by-element on the
        # simulators' hot sampling path.
        class NoIterArray(np.ndarray):
            def __iter__(self):
                raise AssertionError("record() iterated the wealth array")

        from repro.p2psim import WealthRecorder

        sample = np.array([1.0, 2.0, 3.0]).view(NoIterArray)
        recorder = WealthRecorder()
        recorder.record(0.0, sample)
        assert recorder.gini_series.x == [0.0]
        assert recorder.mean_wealth_series.y[0] == 2.0

    def test_list_and_ndarray_samples_record_identically(self):
        from repro.p2psim import WealthRecorder

        values = [3.0, 1.0, 0.0, 4.0]
        from_list = WealthRecorder()
        from_list.record(1.0, values)
        from_array = WealthRecorder()
        from_array.record(1.0, np.array(values))
        assert from_list.gini_series.y == from_array.gini_series.y
        assert from_list.bankrupt_series.y == from_array.bankrupt_series.y
        assert from_list.mean_wealth_series.y == from_array.mean_wealth_series.y
