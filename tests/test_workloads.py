"""Tests for workload generators."""

import numpy as np
import pytest

from repro.overlay import ChurnConfig, ring_topology, scale_free_topology
from repro.workloads import (
    elastic_chunk_rates,
    equal_initial_wealth,
    exponential_initial_wealth,
    generate_churn_trace,
    pareto_initial_wealth,
    streaming_chunk_rates,
    zipf_demand_weights,
)


class TestDemand:
    def test_streaming_rates_sum_to_rate(self):
        topology = scale_free_topology(40, mean_degree=8, seed=1)
        rates = streaming_chunk_rates(topology, streaming_rate=2.0)
        for buyer, sellers in rates.items():
            if sellers:
                assert sum(sellers.values()) == pytest.approx(2.0)
                assert set(sellers) <= set(topology.neighbors(buyer))

    def test_elastic_rates_heterogeneous(self):
        topology = ring_topology(30)
        rates = elastic_chunk_rates(topology, mean_rate=1.0, dispersion=1.0, seed=2)
        aggregates = [sum(sellers.values()) for sellers in rates.values()]
        assert np.std(aggregates) > 0.1
        assert np.mean(aggregates) == pytest.approx(1.0, abs=0.5)

    def test_elastic_zero_dispersion_is_uniform(self):
        topology = ring_topology(10)
        rates = elastic_chunk_rates(topology, mean_rate=1.0, dispersion=0.0, seed=3)
        aggregates = [sum(sellers.values()) for sellers in rates.values()]
        np.testing.assert_allclose(aggregates, 1.0)

    def test_zipf_weights(self):
        weights = zipf_demand_weights(100, exponent=1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[50]
        with pytest.raises(ValueError):
            zipf_demand_weights(0)


class TestWealthAllocators:
    def test_equal_allocation(self):
        allocation = equal_initial_wealth(range(5), 10.0)
        assert allocation == {i: 10.0 for i in range(5)}

    def test_exponential_allocation_mean_preserved(self):
        allocation = exponential_initial_wealth(range(200), 10.0, seed=1)
        assert np.mean(list(allocation.values())) == pytest.approx(10.0)
        assert min(allocation.values()) >= 0.0

    def test_pareto_allocation_mean_preserved_and_heavy_tailed(self):
        allocation = pareto_initial_wealth(range(500), 10.0, tail_index=1.5, seed=2)
        values = np.array(list(allocation.values()))
        assert values.mean() == pytest.approx(10.0)
        assert values.max() > 5 * values.mean()

    def test_pareto_requires_finite_mean(self):
        with pytest.raises(ValueError):
            pareto_initial_wealth(range(10), 10.0, tail_index=1.0)


class TestChurnTraces:
    def test_trace_sorted_and_within_horizon(self):
        config = ChurnConfig(arrival_rate=0.5, mean_lifespan=100.0)
        trace = generate_churn_trace(config, horizon=500.0, initial_peers=20,
                                     first_new_peer_id=20, seed=1)
        times = [event.time for event in trace]
        assert times == sorted(times)
        assert all(0.0 <= t < 500.0 for t in times)

    def test_every_leave_has_matching_join_or_initial_peer(self):
        config = ChurnConfig(arrival_rate=0.5, mean_lifespan=50.0)
        trace = generate_churn_trace(config, horizon=300.0, initial_peers=10,
                                     first_new_peer_id=10, seed=2)
        joined = {event.peer_id for event in trace if event.action == "join"}
        for event in trace:
            if event.action == "leave":
                assert event.peer_id in joined or event.peer_id < 10

    def test_initial_peers_not_churned_when_disabled(self):
        config = ChurnConfig(arrival_rate=0.2, mean_lifespan=10.0, churn_initial_peers=False)
        trace = generate_churn_trace(config, horizon=200.0, initial_peers=10,
                                     first_new_peer_id=10, seed=3)
        assert all(event.peer_id >= 10 for event in trace)

    def test_arrival_count_scales_with_rate(self):
        low = generate_churn_trace(ChurnConfig(0.1, 50.0), horizon=1000.0, seed=4)
        high = generate_churn_trace(ChurnConfig(1.0, 50.0), horizon=1000.0, seed=4)
        low_joins = sum(1 for event in low if event.action == "join")
        high_joins = sum(1 for event in high if event.action == "join")
        assert high_joins > 3 * low_joins

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            generate_churn_trace(ChurnConfig(1.0, 10.0), horizon=0.0)
