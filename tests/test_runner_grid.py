"""Tests for ParamGrid / SweepSpec expansion and the seed-derivation contract."""

import pytest

from repro.runner import SCENARIOS, ParamGrid, SweepSpec, canonical_config, scenario
from repro.utils.rng import derive_seed


class TestParamGrid:
    def test_cartesian_expansion_order(self):
        grid = ParamGrid({"a": [1, 2], "b": ["x", "y"]})
        assert grid.points() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert len(grid) == 4

    def test_empty_grid_yields_single_empty_config(self):
        assert ParamGrid().points() == [{}]
        assert len(ParamGrid()) == 1

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            ParamGrid({"a": []})

    def test_parse_coerces_types(self):
        grid = ParamGrid.parse(["rate=0.1,0.2", "count=5", "mode=fast"])
        points = grid.points()
        assert points[0] == {"rate": 0.1, "count": 5, "mode": "fast"}
        assert isinstance(points[0]["rate"], float)
        assert isinstance(points[0]["count"], int)

    def test_parse_rejects_malformed_spec(self):
        with pytest.raises(ValueError, match="name=v1,v2"):
            ParamGrid.parse(["no-equals-sign"])
        with pytest.raises(ValueError, match="name=v1,v2"):
            ParamGrid.parse(["name="])


class TestCanonicalConfig:
    def test_key_order_does_not_matter(self):
        assert canonical_config({"a": 1, "b": 2}) == canonical_config({"b": 2, "a": 1})

    def test_tuples_and_lists_coincide(self):
        assert canonical_config({"a": (1, 2)}) == canonical_config({"a": [1, 2]})

    def test_int_and_float_coincide(self):
        # A CLI-parsed `threshold=50` (int) and a scenario's 50.0 must be the
        # same configuration: identical seeds, identical cache artifacts.
        assert canonical_config({"threshold": 50}) == canonical_config({"threshold": 50.0})
        assert canonical_config({"a": [1, 2]}) == canonical_config({"a": [1.0, 2.0]})
        assert canonical_config({"flag": True}) != canonical_config({"flag": 1})

    def test_int_and_float_grids_share_seeds(self):
        int_spec = SweepSpec("fig9", grid=[{"tax_threshold": 50}], replications=1, base_seed=4)
        float_spec = SweepSpec(
            "fig9", grid=[{"tax_threshold": 50.0}], replications=1, base_seed=4
        )
        assert int_spec.tasks()[0].seed == float_spec.tasks()[0].seed


class TestSweepSpec:
    def test_tasks_ordered_by_config_then_replication(self):
        spec = SweepSpec("fig3", grid=ParamGrid({"num_peers": [30, 50]}), replications=2)
        tasks = spec.tasks()
        assert [(t.config_index, t.replication) for t in tasks] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_seed_follows_derivation_contract(self):
        spec = SweepSpec(
            "fig3", grid=ParamGrid({"num_peers": [30]}), replications=2, base_seed=9
        )
        task = spec.tasks()[1]
        expected = derive_seed(9, "sweep", "fig3", canonical_config({"num_peers": 30}), 1)
        assert task.seed == expected

    def test_seed_independent_of_grid_position(self):
        # The same config must receive the same seeds no matter where it
        # sits in the grid — appending configs never perturbs existing ones.
        small = SweepSpec("fig3", grid=[{"num_peers": 30}], replications=2, base_seed=3)
        large = SweepSpec(
            "fig3",
            grid=[{"num_peers": 99}, {"num_peers": 30}],
            replications=2,
            base_seed=3,
        )
        small_seeds = [t.seed for t in small.tasks()]
        large_seeds = [t.seed for t in large.tasks() if t.config == {"num_peers": 30}]
        assert small_seeds == large_seeds

    def test_replication_seeds_distinct(self):
        spec = SweepSpec("fig3", grid=[{"num_peers": 30}], replications=5)
        seeds = [t.seed for t in spec.tasks()]
        assert len(set(seeds)) == len(seeds)

    def test_task_payload_round_trip(self):
        from repro.runner import SweepTask

        task = SweepSpec("fig9", grid=[{"tax_rate": 0.1}], replications=1).tasks()[0]
        assert SweepTask.from_payload(task.to_payload()) == task

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError, match="replications"):
            SweepSpec("fig3", replications=0)

    def test_describe_mentions_shape(self):
        spec = SweepSpec(
            "fig11",
            grid=[{"mean_lifespan": 250.0}, {"mean_lifespan": 500.0}],
            replications=3,
            scale="smoke",
        )
        assert "2 configs x 3 reps = 6 shards" in spec.describe()

    def test_duplicate_configs_deduplicated(self):
        # Two grid points with identical canonical content (50 vs 50.0) are
        # one configuration: one seed chain, one cache artifact, one row.
        spec = SweepSpec(
            "fig3",
            grid=[{"num_peers": 50}, {"num_peers": 50.0}],
            replications=2,
            scale="smoke",
        )
        assert len(spec.configs()) == 1
        assert len(spec.tasks()) == 2

    def test_ignored_knobs_normalized_out_of_config_identity(self):
        # fig10's wealth_threshold is meaningless under the fixed policy and
        # fig9's tax_threshold under tax_rate=0: crossing them must not mint
        # distinct configurations that simulate identically.
        spec = SweepSpec(
            "fig10",
            grid=ParamGrid(
                {"spending_policy": ["fixed", "dynamic"], "wealth_threshold": [10.0, 20.0]}
            ),
            scale="smoke",
        )
        configs = spec.configs()
        assert {"spending_policy": "fixed"} in configs
        assert len(configs) == 3  # fixed once + dynamic at each threshold
        spec9 = SweepSpec(
            "fig9",
            grid=ParamGrid({"tax_rate": [0.0, 0.1], "tax_threshold": [50.0, 80.0]}),
            scale="smoke",
        )
        configs9 = spec9.configs()
        assert {"tax_rate": 0.0} in configs9
        assert len(configs9) == 3  # no-tax once + taxed at each threshold

    def test_threshold_only_fig9_sweep_is_one_no_tax_config(self):
        # Without a tax_rate axis the point runner's default (0.0) applies:
        # the thresholds are all ignored, so the sweep is one explicit
        # no-tax configuration (not the empty config, which would replicate
        # the whole figure).
        spec = SweepSpec(
            "fig9", grid=ParamGrid({"tax_threshold": [50.0, 80.0]}), scale="smoke"
        )
        assert spec.configs() == [{"tax_rate": 0.0}]


class TestScenarios:
    def test_every_scenario_builds(self):
        for name in SCENARIOS:
            spec = scenario(name, replications=2, base_seed=5, scale="smoke")
            assert spec.replications == 2
            assert spec.base_seed == 5
            assert spec.scale == "smoke"
            assert len(spec.configs()) >= 2

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("not-a-scenario")

    def test_every_scenario_uses_declared_sweep_axes(self):
        # A bundle whose configs name an axis the point runner does not
        # accept would only fail at shard-execution time; pin it here.
        from repro.experiments import validate_sweep_config

        for name in SCENARIOS:
            spec = SCENARIOS[name]()
            axis_names = {key for config in spec.configs() for key in config}
            validate_sweep_config(spec.experiment_id, axis_names)

    def test_every_figure_has_a_paper_scale_bundle(self):
        from repro.experiments import EXPERIMENTS

        for experiment_id in EXPERIMENTS:
            name = f"{experiment_id}-paper"
            assert name in SCENARIOS, name
            spec = SCENARIOS[name]()
            assert spec.experiment_id == experiment_id
            assert spec.scale == "paper"
            assert len(spec.configs()) >= 1
            assert all(config for config in spec.configs()), (
                f"{name}: empty config would replicate the whole experiment "
                "instead of running a grid point"
            )
