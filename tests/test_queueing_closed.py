"""Tests for the closed Jackson network (Buzen's algorithm, Eq. 3 product form)."""

import math

import numpy as np
import pytest

from repro.queueing import ClosedJacksonNetwork, RoutingMatrix
from repro.queueing.mva import mva_mean_queue_lengths


class TestConstruction:
    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            ClosedJacksonNetwork([], 5)
        with pytest.raises(ValueError):
            ClosedJacksonNetwork([1.0, 0.0], 5)
        with pytest.raises(ValueError):
            ClosedJacksonNetwork([1.0, 1.0], -1)

    def test_utilizations_normalised_to_max_one(self):
        network = ClosedJacksonNetwork([2.0, 4.0], 3)
        np.testing.assert_allclose(network.utilizations, [0.5, 1.0])

    def test_average_wealth(self):
        network = ClosedJacksonNetwork([1.0, 1.0, 1.0, 1.0], 20)
        assert network.average_wealth == pytest.approx(5.0)

    def test_from_rates_and_from_routing(self):
        routing = RoutingMatrix([[0.0, 1.0], [1.0, 0.0]])
        network = ClosedJacksonNetwork.from_routing(routing, service_rates=[1.0, 2.0], total_jobs=4)
        np.testing.assert_allclose(network.utilizations, [1.0, 0.5])
        network2 = ClosedJacksonNetwork.from_rates([1.0, 1.0], [1.0, 2.0], 4)
        np.testing.assert_allclose(network2.utilizations, [1.0, 0.5])


class TestPartitionFunction:
    def test_symmetric_partition_matches_stars_and_bars(self):
        # With all utilizations equal to 1, G(M) counts the compositions of
        # M jobs over N queues: C(M + N - 1, N - 1).
        network = ClosedJacksonNetwork([1.0] * 4, 6)
        expected = math.comb(6 + 4 - 1, 4 - 1)
        assert math.exp(network.log_partition_function) == pytest.approx(expected, rel=1e-9)

    def test_two_queue_closed_form(self):
        # For two queues with utilizations 1 and u: G(M) = sum_{k=0..M} u^k.
        u = 0.5
        total = 5
        network = ClosedJacksonNetwork([1.0, u], total)
        expected = sum(u**k for k in range(total + 1))
        assert math.exp(network.log_partition_function) == pytest.approx(expected, rel=1e-9)

    def test_log_partition_at_bounds(self):
        network = ClosedJacksonNetwork([1.0, 1.0], 3)
        assert network.log_partition_at(0) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            network.log_partition_at(4)


class TestJointDistribution:
    def test_joint_probabilities_sum_to_one(self):
        network = ClosedJacksonNetwork([1.0, 0.7, 0.4], 4)
        total = 0.0
        for a in range(5):
            for b in range(5 - a):
                c = 4 - a - b
                total += network.joint_probability([a, b, c])
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_joint_probability_zero_off_manifold(self):
        network = ClosedJacksonNetwork([1.0, 1.0], 3)
        assert network.joint_probability([1, 1]) == 0.0

    def test_joint_probability_validates_input(self):
        network = ClosedJacksonNetwork([1.0, 1.0], 3)
        with pytest.raises(ValueError):
            network.joint_probability([1, 1, 1])
        with pytest.raises(ValueError):
            network.joint_probability([-1, 4])


class TestMarginals:
    def test_marginal_pmf_sums_to_one(self):
        network = ClosedJacksonNetwork([1.0, 0.8, 0.3], 10)
        for queue in range(3):
            assert network.marginal_pmf(queue).sum() == pytest.approx(1.0)

    def test_two_queue_symmetric_marginal_is_uniform(self):
        # Two symmetric queues sharing M jobs: every split is equally likely.
        network = ClosedJacksonNetwork([1.0, 1.0], 4)
        np.testing.assert_allclose(network.marginal_pmf(0), np.full(5, 0.2), atol=1e-9)

    def test_mean_queue_lengths_sum_to_population(self):
        network = ClosedJacksonNetwork([1.0, 0.6, 0.9, 0.2], 12)
        assert network.mean_queue_lengths().sum() == pytest.approx(12.0, rel=1e-8)

    def test_higher_utilization_means_more_wealth(self):
        network = ClosedJacksonNetwork([1.0, 0.5, 0.25], 20)
        lengths = network.mean_queue_lengths()
        assert lengths[0] > lengths[1] > lengths[2]

    def test_marginal_mean_matches_mean_queue_length(self):
        network = ClosedJacksonNetwork([1.0, 0.4, 0.7], 8)
        pmf = network.marginal_pmf(1)
        mean_from_pmf = float(np.dot(np.arange(len(pmf)), pmf))
        assert mean_from_pmf == pytest.approx(network.mean_queue_length(1), rel=1e-8)

    def test_tail_and_idle_probabilities_consistent(self):
        network = ClosedJacksonNetwork([1.0, 0.6], 6)
        for queue in range(2):
            pmf = network.marginal_pmf(queue)
            assert network.idle_probability(queue) == pytest.approx(pmf[0], rel=1e-8)
            assert network.tail_probability(queue, 3) == pytest.approx(pmf[3:].sum(), rel=1e-8)

    def test_tail_probability_bounds(self):
        network = ClosedJacksonNetwork([1.0, 1.0], 5)
        assert network.tail_probability(0, 0) == 1.0
        assert network.tail_probability(0, 6) == 0.0

    def test_queue_length_variance_nonnegative(self):
        network = ClosedJacksonNetwork([1.0, 0.3], 7)
        assert network.queue_length_variance(0) >= 0.0

    def test_index_errors(self):
        network = ClosedJacksonNetwork([1.0, 1.0], 2)
        with pytest.raises(IndexError):
            network.marginal_pmf(5)


class TestConsistencyWithMva:
    @pytest.mark.parametrize("total_jobs", [1, 5, 20])
    def test_mean_queue_lengths_match_mva(self, total_jobs):
        rng = np.random.default_rng(0)
        visit_ratios = rng.random(5) + 0.2
        service_rates = rng.random(5) + 0.5
        network = ClosedJacksonNetwork.from_rates(visit_ratios, service_rates, total_jobs)
        buzen_lengths = network.mean_queue_lengths()
        mva_lengths = mva_mean_queue_lengths(visit_ratios, service_rates, total_jobs)
        np.testing.assert_allclose(buzen_lengths, mva_lengths, rtol=1e-6)


class TestThroughputAndSampling:
    def test_relative_throughput_is_busy_probability(self):
        network = ClosedJacksonNetwork([1.0, 0.5], 4)
        for queue in range(2):
            assert network.relative_throughput(queue) == pytest.approx(
                1.0 - network.idle_probability(queue)
            )

    def test_sample_occupancy_rows_sum_to_population(self):
        network = ClosedJacksonNetwork([1.0, 0.7, 0.4], 9)
        samples = network.sample_occupancy(rng=np.random.default_rng(1), num_samples=20)
        assert samples.shape == (20, 3)
        np.testing.assert_array_equal(samples.sum(axis=1), np.full(20, 9))

    def test_sample_occupancy_mean_close_to_expectation(self):
        network = ClosedJacksonNetwork([1.0, 0.5], 10)
        samples = network.sample_occupancy(rng=np.random.default_rng(2), num_samples=400)
        np.testing.assert_allclose(
            samples.mean(axis=0), network.mean_queue_lengths(), atol=0.6
        )

    def test_expected_wealth_gini_zero_for_symmetric(self):
        network = ClosedJacksonNetwork([1.0] * 5, 25)
        assert network.expected_wealth_gini() == pytest.approx(0.0, abs=1e-9)

    def test_expected_wealth_gini_positive_for_heterogeneous(self):
        network = ClosedJacksonNetwork([1.0, 0.2, 0.2, 0.2], 40)
        assert network.expected_wealth_gini() > 0.3
