"""Tests for result records, tables and series."""

import pytest

from repro.utils.records import ResultRecord, ResultTable, SeriesRecord, rows_to_csv


class TestResultRecord:
    def test_getitem_and_contains(self):
        record = ResultRecord({"a": 1, "b": 2})
        assert record["a"] == 1
        assert "b" in record
        assert "c" not in record

    def test_get_with_default(self):
        record = ResultRecord({"a": 1})
        assert record.get("missing", 7) == 7

    def test_as_dict_returns_copy(self):
        record = ResultRecord({"a": 1})
        data = record.as_dict()
        data["a"] = 99
        assert record["a"] == 1


class TestResultTable:
    def test_add_row_and_len(self):
        table = ResultTable(title="t")
        table.add_row(x=1, y=2)
        table.add_row(x=3, y=4)
        assert len(table) == 2

    def test_column_extraction(self):
        table = ResultTable(title="t")
        table.add_row(x=1, y=2)
        table.add_row(x=3)
        assert table.column("x") == [1, 3]
        assert table.column("y") == [2, None]

    def test_columns_union_in_order(self):
        table = ResultTable(title="t")
        table.add_row(a=1)
        table.add_row(b=2, a=3)
        assert table.columns() == ["a", "b"]

    def test_filter(self):
        table = ResultTable(title="t")
        table.add_row(kind="x", value=1)
        table.add_row(kind="y", value=2)
        filtered = table.filter(kind="x")
        assert len(filtered) == 1
        assert filtered.rows[0]["value"] == 1

    def test_to_csv_round_trip(self):
        table = ResultTable(title="t")
        table.add_row(a=1, b="hello")
        csv_text = table.to_csv()
        assert "a,b" in csv_text.splitlines()[0]
        assert "1,hello" in csv_text

    def test_format_contains_all_cells(self):
        table = ResultTable(title="my table")
        table.add_row(name="alpha", value=0.125)
        text = table.format()
        assert "my table" in text
        assert "alpha" in text
        assert "0.125" in text

    def test_format_empty_table(self):
        assert "(empty)" in ResultTable(title="t").format()

    def test_iteration(self):
        table = ResultTable(title="t")
        table.add_row(x=1)
        assert [row["x"] for row in table] == [1]


class TestSeriesRecord:
    def test_append_and_len(self):
        series = SeriesRecord(label="s")
        series.append(0, 1.0)
        series.append(1, 2.0)
        assert len(series) == 2
        assert series.points() == [(0.0, 1.0), (1.0, 2.0)]

    def test_final_value(self):
        series = SeriesRecord(label="s", x=[0, 1], y=[5.0, 7.0])
        assert series.final_value() == 7.0

    def test_tail_mean(self):
        series = SeriesRecord(label="s", x=list(range(8)), y=[0, 0, 0, 0, 1, 1, 1, 1])
        assert series.tail_mean(0.5) == pytest.approx(1.0)

    def test_tail_mean_empty_raises(self):
        with pytest.raises(ValueError):
            SeriesRecord(label="s").tail_mean()

    def test_tail_mean_invalid_fraction(self):
        series = SeriesRecord(label="s", x=[0], y=[1.0])
        with pytest.raises(ValueError):
            series.tail_mean(0.0)


class TestRowsToCsv:
    def test_column_subset_and_order(self):
        rows = [ResultRecord({"a": 1, "b": 2}), ResultRecord({"a": 3, "b": 4})]
        text = rows_to_csv(rows, columns=["b", "a"])
        lines = text.strip().splitlines()
        assert lines[0] == "b,a"
        assert lines[1] == "2,1"

    def test_missing_columns_become_empty(self):
        rows = [ResultRecord({"a": 1})]
        text = rows_to_csv(rows, columns=["a", "z"])
        assert text.strip().splitlines()[1] == "1,"
