"""Tests for chunk pricing schemes."""

import numpy as np
import pytest

from repro.core.pricing import (
    AuctionPricing,
    LinearPricing,
    PerPeerFlatPricing,
    PoissonPricing,
    UniformPricing,
)


class TestUniformPricing:
    def test_constant_price(self):
        pricing = UniformPricing(2.5)
        assert pricing.price(1, 10) == 2.5
        assert pricing.settle(1, 10) == 2.5
        assert pricing.mean_price() == 2.5
        assert pricing.is_uniform()

    def test_invalid_price(self):
        with pytest.raises(ValueError):
            UniformPricing(0.0)


class TestPerPeerFlatPricing:
    def test_per_seller_prices(self):
        pricing = PerPeerFlatPricing({1: 2.0, 2: 3.0}, default_price=1.0)
        assert pricing.price(1, 0) == 2.0
        assert pricing.price(2, 5) == 3.0
        assert pricing.price(99, 0) == 1.0
        assert not pricing.is_uniform()

    def test_set_price(self):
        pricing = PerPeerFlatPricing({1: 2.0})
        pricing.set_price(1, 4.0)
        assert pricing.price(1, 0) == 4.0

    def test_mean_price(self):
        pricing = PerPeerFlatPricing({1: 2.0, 2: 4.0})
        assert pricing.mean_price() == pytest.approx(3.0)

    def test_uniform_detection(self):
        assert PerPeerFlatPricing({1: 1.0, 2: 1.0}, default_price=1.0).is_uniform()

    def test_zero_price_sellers_allowed(self):
        # A Poisson price vector with mean 1 credit (the paper's Fig. 1
        # non-uniform case) contains zero-price sellers; they are legal and
        # simply never earn.
        pricing = PerPeerFlatPricing({1: 0.0, 2: 2.0})
        assert pricing.price(1, 0) == 0.0
        assert pricing.mean_price() == pytest.approx(1.0)
        pricing.set_price(2, 0.0)
        assert pricing.price(2, 0) == 0.0

    def test_invalid_prices(self):
        with pytest.raises(ValueError):
            PerPeerFlatPricing({1: -1.0})
        with pytest.raises(ValueError):
            PerPeerFlatPricing({1: 1.0}).set_price(1, -0.5)
        with pytest.raises(ValueError):
            PerPeerFlatPricing({}, default_price=-1.0)


class TestLinearPricing:
    def test_price_grows_with_round_purchases(self):
        pricing = LinearPricing(base_price=1.0, increment=0.5)
        assert pricing.price(1, 0) == 1.0
        pricing.note_purchase(1, 0, buyer_id=9)
        assert pricing.price(1, 1) == 1.5
        pricing.note_purchase(1, 1, buyer_id=9)
        assert pricing.price(1, 2) == 2.0

    def test_reset_round_clears_state(self):
        pricing = LinearPricing(base_price=1.0, increment=0.5)
        pricing.note_purchase(1, 0, None)
        pricing.reset_round()
        assert pricing.price(1, 0) == 1.0

    def test_independent_sellers(self):
        pricing = LinearPricing(base_price=1.0, increment=1.0)
        pricing.note_purchase(1, 0, None)
        assert pricing.price(2, 0) == 1.0


class TestPoissonPricing:
    def test_prices_memoised_per_seller_chunk(self):
        pricing = PoissonPricing(mean_price=2.0, min_price=1.0, seed=1)
        first = pricing.price(3, 7)
        assert pricing.price(3, 7) == first

    def test_min_price_respected(self):
        pricing = PoissonPricing(mean_price=1.0, min_price=1.0, seed=2)
        prices = [pricing.price(seller, chunk) for seller in range(10) for chunk in range(10)]
        assert min(prices) >= 1.0

    def test_zero_min_price_allows_free_chunks(self):
        pricing = PoissonPricing(mean_price=1.0, min_price=0.0, seed=3)
        prices = [pricing.price(0, chunk) for chunk in range(200)]
        assert min(prices) == 0.0
        assert np.mean(prices) == pytest.approx(1.0, abs=0.25)

    def test_mean_price_reported(self):
        assert PoissonPricing(mean_price=2.5, min_price=1.0, seed=4).mean_price() == 2.5

    def test_mean_below_min_degrades_to_min(self):
        pricing = PoissonPricing(mean_price=0.5, min_price=1.0, seed=5)
        assert pricing.price(0, 0) == 1.0


class TestAuctionPricing:
    def test_reservation_price_stable_per_seller(self):
        pricing = AuctionPricing(low=0.5, high=1.5, seed=1)
        assert pricing.price(1, 0) == pricing.price(1, 99)

    def test_settle_uses_second_price(self):
        pricing = AuctionPricing(low=0.5, high=1.5, seed=2)
        sellers = [1, 2, 3]
        prices = {seller: pricing.price(seller, 0) for seller in sellers}
        winner = min(sellers, key=lambda s: prices[s])
        paid = pricing.settle(winner, 0, competing_sellers=sellers)
        others = sorted(price for seller, price in prices.items() if seller != winner)
        assert paid == pytest.approx(max(prices[winner], others[0]))
        assert paid >= prices[winner]

    def test_settle_without_competition_uses_reservation(self):
        pricing = AuctionPricing(seed=3)
        assert pricing.settle(5, 0, competing_sellers=[5]) == pricing.price(5, 0)
        assert pricing.settle(5, 0) == pricing.price(5, 0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            AuctionPricing(low=2.0, high=1.0)
