"""Tests for intra-run round-block partitioning (repro.runner.partition)."""

import pytest

from repro.p2psim import CreditMarketSimulator, MarketSimConfig
from repro.runner import ArtifactCache, SweepSpec, run_sweep
from repro.runner import ExecutionPlan, execute
from repro.runner.partition import (
    BlockContext,
    CheckpointStore,
    OutOfBlockBudget,
    round_blocks,
)


def small_config(**overrides):
    defaults = dict(
        num_peers=40,
        initial_credits=15.0,
        horizon=200.0,
        step=2.0,
        topology_mean_degree=6.0,
        sample_interval=50.0,
        seed=7,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


class TestRoundBlocks:
    def test_partitions_sum_and_balance(self):
        assert round_blocks(10, 3) == [4, 3, 3]
        assert round_blocks(9, 3) == [3, 3, 3]
        assert round_blocks(2, 4) == [1, 1, 0, 0]
        assert round_blocks(0, 2) == [0, 0]
        for total in (1, 17, 100):
            for blocks in (1, 2, 5, 9):
                sizes = round_blocks(total, blocks)
                assert sum(sizes) == total
                assert len(sizes) == blocks
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            round_blocks(10, 0)
        with pytest.raises(ValueError):
            round_blocks(-1, 2)


class TestCheckpointStore:
    def test_store_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("scope", 0, 1, 4) is None
        store.store("scope", 0, 1, 4, {"state": [1, 2, 3]})
        assert store.contains("scope", 0, 1, 4)
        assert store.load("scope", 0, 1, 4) == {"state": [1, 2, 3]}
        assert store.discard("scope", 0, 1, 4)
        assert not store.contains("scope", 0, 1, 4)

    def test_corrupt_checkpoint_counts_as_miss_and_is_removed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.store("scope", 0, 1, 2, {"ok": True})
        path.write_bytes(b"not a pickle")
        assert store.load("scope", 0, 1, 2) is None
        assert not store.contains("scope", 0, 1, 2)

    def test_keys_differ_by_every_label(self, tmp_path):
        store = CheckpointStore(tmp_path)
        base = store.key("scope", 0, 1, 4)
        assert base != store.key("other", 0, 1, 4)
        assert base != store.key("scope", 1, 1, 4)
        assert base != store.key("scope", 0, 2, 4)
        assert base != store.key("scope", 0, 1, 8)
        assert base == store.key("scope", 0, 1, 4)  # stable

    def test_scopes_shard_into_separate_directories(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.store("a", 0, 1, 2, 1)
        store.store("a", 0, 2, 2, 2)
        store.store("b", 0, 1, 2, 3)
        assert store.prune_scope("a") == 2
        assert store.load("b", 0, 1, 2) == 3  # other scopes untouched
        assert store.prune_scope("a") == 0

    def test_prune_stale_collects_old_scopes_only(self, tmp_path):
        import os
        import time

        store = CheckpointStore(tmp_path)
        store.store("old", 0, 1, 2, 1)
        store.store("new", 0, 1, 2, 2)
        ancient = time.time() - 10 * 24 * 3600
        old_dir = store._scope_dir("old")
        for entry in [old_dir, *old_dir.iterdir()]:
            os.utime(entry, (ancient, ancient))
        assert store.prune_stale() == 1
        assert store.load("old", 0, 1, 2) is None
        assert store.load("new", 0, 1, 2) == 2


class TestBlockContext:
    def test_contexts_do_not_nest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with BlockContext(store, blocks=2, scope="a"):
            with pytest.raises(RuntimeError):
                BlockContext(store, blocks=2, scope="b").__enter__()

    def test_budget_of_one_advances_one_block_per_invocation(self, tmp_path):
        store = CheckpointStore(tmp_path)
        config = small_config()
        blocks = 3
        invocations = 0
        while True:
            context = BlockContext(store, blocks=blocks, scope="chain", budget=1)
            invocations += 1
            try:
                with context:
                    result = CreditMarketSimulator.run_config(config)
                break
            except OutOfBlockBudget:
                continue
        assert invocations == blocks
        reference = CreditMarketSimulator.run_config(config)
        assert result.final_wealths.tobytes() == reference.final_wealths.tobytes()
        assert result.total_transfers == reference.total_transfers

    def test_resume_skips_completed_blocks(self, tmp_path):
        # Interrupt after one block, then finish in a fresh context against
        # the same store: the completed block must not re-execute (its
        # checkpoint is already present) and the result must match the
        # monolithic run.
        store = CheckpointStore(tmp_path)
        config = small_config(seed=21)
        with pytest.raises(OutOfBlockBudget):
            with BlockContext(store, blocks=4, scope="resume", budget=1):
                CreditMarketSimulator.run_config(config)
        assert store.contains("resume", 0, 1, 4)

        resumed = BlockContext(store, blocks=4, scope="resume", budget=3)
        with resumed:
            result = CreditMarketSimulator.run_config(config)
        assert resumed.budget == 0  # exactly the three missing blocks ran
        reference = CreditMarketSimulator.run_config(config)
        assert result.final_wealths.tobytes() == reference.final_wealths.tobytes()

    def test_prune_scope_removes_chain(self, tmp_path):
        store = CheckpointStore(tmp_path)
        config = small_config()
        with BlockContext(store, blocks=2, scope="prune", budget=None):
            CreditMarketSimulator.run_config(config)
        # Two block states plus the finalised-result slot.
        assert store.prune_scope("prune") == 3
        assert store.prune_scope("prune") == 0

    def test_restored_run_syncs_policy_counters(self, tmp_path):
        # fig9-style flow: the experiment reads mutable counters off the tax
        # policy object it constructed.  A restored checkpoint mutates pickle
        # copies, so the context must sync the state back onto the caller's
        # objects — partitioned totals must equal monolithic ones.
        from repro.core.taxation import ThresholdIncomeTax

        def make_config():
            return small_config(
                initial_credits=30.0,
                tax_policy=ThresholdIncomeTax(rate=0.2, threshold=20.0),
            )

        monolithic_config = make_config()
        CreditMarketSimulator.run_config(monolithic_config)
        assert monolithic_config.tax_policy.total_collected > 0

        store = CheckpointStore(tmp_path)
        # Drive the chain the way the executor does: one new block per
        # invocation, each invocation re-constructing its config/policy.
        while True:
            config = make_config()
            try:
                with BlockContext(store, blocks=3, scope="sync", budget=1):
                    result = CreditMarketSimulator.run_config(config)
                break
            except OutOfBlockBudget:
                continue
        assert config.tax_policy.total_collected == monolithic_config.tax_policy.total_collected
        assert config.tax_policy.total_rebated == monolithic_config.tax_policy.total_rebated
        assert result.extras["tax_pool"] == pytest.approx(
            monolithic_config.tax_policy.total_collected
            - monolithic_config.tax_policy.total_rebated
        )


class TestExecuteRoundBlocks:
    def test_single_block_matches_monolithic(self):
        config = small_config()
        reference = CreditMarketSimulator.run_config(config)
        partitioned = execute(config, ExecutionPlan(intra_jobs=1))
        assert partitioned.final_wealths.tobytes() == reference.final_wealths.tobytes()

    def test_more_blocks_than_rounds(self, tmp_path):
        # 200s / 2s = 100 rounds split into 150 blocks: trailing zero-length
        # blocks must be harmless — and free (no budget, no checkpoint).
        config = small_config()
        reference = CreditMarketSimulator.run_config(config)
        store = CheckpointStore(tmp_path)
        partitioned = execute(config, ExecutionPlan(intra_jobs=150), store=store, scope="wide")
        assert partitioned.final_wealths.tobytes() == reference.final_wealths.tobytes()
        # 100 non-empty block states + the finalised result; 50 zero blocks
        # wrote nothing.
        assert store.prune_scope("wide") == 101

    def test_persistent_store_resumes_across_calls(self, tmp_path):
        store = CheckpointStore(tmp_path)
        config = small_config(seed=5)
        first = execute(config, ExecutionPlan(intra_jobs=4), store=store, scope="persist")
        # All four checkpoints exist now; a second call restores the final
        # state without simulating a single round.
        again = execute(config, ExecutionPlan(intra_jobs=4), store=store, scope="persist")
        assert again.final_wealths.tobytes() == first.final_wealths.tobytes()
        assert again.total_transfers == first.total_transfers


class TestExecutorIntraJobs:
    SPEC = SweepSpec(
        "fig7",
        grid=[{"average_wealth": 8.0}],
        replications=2,
        base_seed=3,
        scale="smoke",
    )

    def test_intra_jobs_requires_at_least_one(self):
        with pytest.raises(ValueError):
            run_sweep(self.SPEC, jobs=1, intra_jobs=0)

    def test_checkpoints_pruned_after_commit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        report = run_sweep(self.SPEC, jobs=1, intra_jobs=2, cache=cache)
        assert report.executed == 2
        checkpoints = list((tmp_path / "checkpoints").glob("*/*.pkl"))
        assert checkpoints == []

    def test_report_records_intra_jobs(self):
        report = run_sweep(self.SPEC, jobs=1, intra_jobs=2)
        assert report.intra_jobs == 2
        assert "intra_jobs=2" in report.describe()

    def test_monolithic_completion_prunes_orphaned_checkpoints(self, tmp_path):
        # An interrupted partitioned run leaves block states behind; a later
        # run that completes the shard monolithically must still prune them
        # (the committed result artifact supersedes the checkpoints).
        from repro.runner import task_key

        cache = ArtifactCache(tmp_path)
        store = CheckpointStore(tmp_path / "checkpoints")
        scope = task_key(self.SPEC.tasks()[0])
        store.store(scope, 0, 1, 2, {"orphan": True})
        run_sweep(self.SPEC, jobs=1, cache=cache)
        assert not store.contains(scope, 0, 1, 2)
