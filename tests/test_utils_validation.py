"""Tests for input-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    FLOAT32_EXACT_INT_MAX,
    check_exact_float_range,
    check_fraction,
    check_index_capacity,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_square_matrix,
    check_stochastic_matrix,
)


class TestScalars:
    def test_check_positive_accepts(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_fraction_inclusive_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_check_fraction_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive=False)

    def test_check_fraction_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="my_arg"):
            check_positive(-1, "my_arg")


class TestProbabilityVector:
    def test_accepts_valid(self):
        result = check_probability_vector([0.25, 0.75], "p")
        assert result.sum() == pytest.approx(1.0)

    def test_renormalises_tiny_drift(self):
        result = check_probability_vector([0.5, 0.5 + 1e-12], "p")
        assert result.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.2], "p")

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector([], "p")
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]], "p")


class TestCapacityGuards:
    def test_index_capacity_accepts_small_counts(self):
        assert check_index_capacity(1_000_000, np.int32, "num_peers") == 1_000_000
        assert check_index_capacity(2**31 - 2, np.int32, "num_peers") == 2**31 - 2

    def test_index_capacity_rejects_int32_overflow(self):
        with pytest.raises(ValueError, match="int32"):
            check_index_capacity(2**31 - 1, np.int32, "num_peers")
        with pytest.raises(ValueError, match="num_peers"):
            check_index_capacity(2**31, np.int32, "num_peers")

    def test_index_capacity_wide_dtype_admits_huge_counts(self):
        assert check_index_capacity(2**31, np.int64, "num_peers") == 2**31

    def test_index_capacity_rejects_negative(self):
        with pytest.raises(ValueError):
            check_index_capacity(-1, np.int64, "num_peers")

    def test_exact_float_range_quiet_within_range(self, recwarn):
        assert check_exact_float_range(FLOAT32_EXACT_INT_MAX, np.float32, "wealth") == float(
            FLOAT32_EXACT_INT_MAX
        )
        assert not recwarn.list

    def test_exact_float_range_warns_beyond_2_24(self):
        with pytest.warns(UserWarning, match="float32"):
            check_exact_float_range(FLOAT32_EXACT_INT_MAX + 1, np.float32, "wealth")

    def test_exact_float_range_quiet_for_float64(self, recwarn):
        check_exact_float_range(2.0**40, np.float64, "wealth")
        assert not recwarn.list


class TestMatrices:
    def test_square_matrix_ok(self):
        matrix = check_square_matrix([[1, 2], [3, 4]], "m")
        assert matrix.shape == (2, 2)

    def test_square_matrix_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square_matrix([[1, 2, 3], [4, 5, 6]], "m")

    def test_square_matrix_rejects_nan(self):
        with pytest.raises(ValueError):
            check_square_matrix([[np.nan, 1], [0, 1]], "m")

    def test_stochastic_matrix_ok(self):
        matrix = check_stochastic_matrix([[0.3, 0.7], [1.0, 0.0]], "m")
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_stochastic_matrix_rejects_bad_row_sum(self):
        with pytest.raises(ValueError, match="row 1"):
            check_stochastic_matrix([[0.5, 0.5], [0.5, 0.2]], "m")

    def test_stochastic_matrix_rejects_negative(self):
        with pytest.raises(ValueError):
            check_stochastic_matrix([[1.2, -0.2], [0.5, 0.5]], "m")
