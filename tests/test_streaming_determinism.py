"""Cross-mode determinism for the streaming simulator: kernels, partitioning, sweeps.

The PR that batched the streaming scheduling round promised the same
contract the market simulator already honours: *how* a streaming
simulation executes never changes *what* it produces.  These tests pin it
at every layer:

* simulator — the ``loop`` and ``vectorized`` scheduling kernels, fed the
  same configuration, must end in byte-identical
  :class:`StreamingSimResult`\\ s (static, churned, heterogeneously priced
  and taxed swarms);
* partition — a streaming run split into checkpointed round-blocks must
  be byte-identical to the monolithic run (churn-event state included);
* orchestrator — the streaming-backed fig5_6/fig11 smoke scenarios must
  produce the same shard payloads and aggregates at ``jobs=1``,
  ``jobs=4``, with ``intra_jobs=2`` chains, and from a warm cache.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.pricing import PerPeerFlatPricing
from repro.core.taxation import ThresholdIncomeTax
from repro.overlay import ChurnConfig
from repro.p2psim import KernelOptions, StreamingMarketSimulator, StreamingSimConfig
from repro.runner import (
    SCENARIOS,
    ExecutionPlan,
    aggregate_sweep,
    execute,
    run_sweep,
)


def fingerprint(result):
    """Byte-level identity of everything a StreamingSimResult reports."""
    return (
        result.final_wealths.tobytes(),
        result.spending_rates.tobytes(),
        result.earning_rates.tobytes(),
        result.continuity.tobytes(),
        result.chunks_delivered,
        result.joins,
        result.leaves,
        result.extras["final_population"],
        result.extras["source_chunks"],
        result.extras["tax_pool"],
        tuple(result.extras["peer_order"]),
        tuple(result.recorder.gini_series.x),
        tuple(result.recorder.gini_series.y),
        tuple(result.recorder.bankrupt_series.y),
        tuple(result.recorder.mean_wealth_series.y),
        tuple(result.recorder.population_series.y),
    )


def static_config(**overrides):
    """Smoke-scale static streaming swarm (the Fig. 1 / Fig. 5-6 shape)."""
    defaults = dict(
        num_peers=36,
        initial_credits=20.0,
        horizon=130.0,
        topology_mean_degree=8.0,
        sample_interval=30.0,
        upload_capacity=2,
        seed=17,
    )
    defaults.update(overrides)
    return StreamingSimConfig(**defaults)


def churned_config(**overrides):
    """Smoke-scale streaming swarm under churn (the Fig. 11 shape)."""
    defaults = dict(
        churn=ChurnConfig(arrival_rate=0.3, mean_lifespan=70.0),
        seed=23,
    )
    defaults.update(overrides)
    return static_config(**defaults)


def priced_taxed_config(**overrides):
    """Heterogeneous per-seller prices plus income taxation."""
    prices = {peer: float(1 + peer % 3) for peer in range(36)}
    defaults = dict(
        pricing=PerPeerFlatPricing(prices),
        tax_policy=ThresholdIncomeTax(rate=0.2, threshold=15.0),
        seed=29,
    )
    defaults.update(overrides)
    return static_config(**defaults)


CONFIG_FACTORIES = {
    "static": static_config,
    "churned": churned_config,
    "priced-taxed": priced_taxed_config,
}


class TestStreamingKernelEquivalence:
    @pytest.mark.parametrize("shape", sorted(CONFIG_FACTORIES))
    def test_loop_and_vectorized_kernels_byte_identical(self, shape):
        config = CONFIG_FACTORIES[shape]()
        vectorized = StreamingMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="vectorized"))
        )
        loop = StreamingMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="loop"))
        )
        assert fingerprint(vectorized) == fingerprint(loop)

    def test_churn_exercised_in_churned_shape(self):
        result = StreamingMarketSimulator.run_config(churned_config())
        assert result.joins > 0 and result.leaves > 0

    @pytest.mark.parametrize("choice", ["availability", "least-loaded", "cheapest"])
    def test_supplier_policies_agree_across_kernels(self, choice):
        config = static_config(supplier_choice=choice, horizon=80.0)
        vectorized = StreamingMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="vectorized"))
        )
        loop = StreamingMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="loop"))
        )
        assert fingerprint(vectorized) == fingerprint(loop)


class TestStreamingPartitionEquivalence:
    @pytest.mark.parametrize("shape", sorted(CONFIG_FACTORIES))
    @pytest.mark.parametrize("blocks", [2, 3, 7])
    def test_round_blocks_byte_identical_to_monolithic(self, shape, blocks):
        config = CONFIG_FACTORIES[shape]()
        monolithic = StreamingMarketSimulator.run_config(config)
        partitioned = execute(config, ExecutionPlan(intra_jobs=blocks))
        assert fingerprint(monolithic) == fingerprint(partitioned)

    def test_partitioned_snapshots_match(self):
        config = static_config()
        times = [40.0, 90.0]
        monolithic = StreamingMarketSimulator(config, snapshot_times=times).run()
        partitioned = execute(config, ExecutionPlan(intra_jobs=3), snapshot_times=times)
        assert set(partitioned.recorder.snapshots) == set(monolithic.recorder.snapshots)
        for time in times:
            np.testing.assert_array_equal(
                partitioned.recorder.snapshots[time], monolithic.recorder.snapshots[time]
            )

    def test_churn_event_state_survives_checkpoints(self):
        config = churned_config()
        monolithic = StreamingMarketSimulator.run_config(config)
        partitioned = execute(config, ExecutionPlan(intra_jobs=4))
        assert monolithic.joins == partitioned.joins > 0
        assert monolithic.leaves == partitioned.leaves > 0
        assert (
            monolithic.extras["final_population"]
            == partitioned.extras["final_population"]
        )


STREAMING_SCENARIOS = ("fig5_6-streaming-smoke", "fig11-streaming-smoke")


class TestStreamingIntraJobsSweepEquivalence:
    @pytest.mark.parametrize("scenario_name", STREAMING_SCENARIOS)
    def test_serial_parallel_chained_and_cached_identical(self, scenario_name, tmp_path):
        from repro.runner import ArtifactCache, scenario

        spec = scenario(scenario_name, base_seed=17)
        serial = run_sweep(spec, jobs=1)
        pooled = run_sweep(spec, jobs=4)
        chained = run_sweep(spec, jobs=4, intra_jobs=2)
        cache = ArtifactCache(tmp_path / "cache")
        cold = run_sweep(spec, jobs=1, cache=cache, intra_jobs=2)
        warm = run_sweep(spec, jobs=1, cache=cache)
        assert serial.executed == pooled.executed == chained.executed == 2
        assert cold.executed == 2 and warm.executed == 0 and warm.cached == 2
        reference = [shard.payload for shard in serial.shards]
        assert [shard.payload for shard in pooled.shards] == reference
        assert [shard.payload for shard in chained.shards] == reference
        assert [shard.payload for shard in cold.shards] == reference
        assert [shard.payload for shard in warm.shards] == reference
        reference_csv = aggregate_sweep(serial).to_csv()
        for report in (pooled, chained, cold, warm):
            assert aggregate_sweep(report).to_csv() == reference_csv

    @pytest.mark.parametrize(
        "experiment_id, config",
        [
            ("fig5_6", {"simulator": "streaming", "num_peers": 30, "horizon": 120.0}),
            (
                "fig11",
                {
                    "simulator": "streaming",
                    "mean_lifespan": 60.0,
                    "num_peers": 30,
                    "horizon": 120.0,
                },
            ),
        ],
    )
    def test_cross_kernel_point_runs_report_identical_rows(self, experiment_id, config):
        # At a shared seed the kernel axis changes execution, never results:
        # the loop and vectorized shards of the streaming-backed fig5_6 and
        # fig11 points must report identical simulated quantities.
        from repro.experiments.registry import run_sweep_point

        rows = []
        for kernel in ("loop", "vectorized"):
            result = run_sweep_point(
                experiment_id, dict(config, kernel=kernel), scale="smoke", seed=11
            )
            rows.append(
                [row.as_dict() for table in result.tables for row in table]
            )
        assert rows[0] == rows[1]

    def test_streaming_scenarios_registered(self):
        for name in STREAMING_SCENARIOS:
            assert name in SCENARIOS
