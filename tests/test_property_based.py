"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.condensation import grand_canonical_wealth, solve_fugacity
from repro.core.credits import CreditLedger
from repro.core.metrics import gini_from_pmf, gini_index, hoover_index, lorenz_curve
from repro.queueing.closed import ClosedJacksonNetwork
from repro.queueing.mva import mva_mean_queue_lengths
from repro.queueing.routing import RoutingMatrix
from repro.queueing.traffic import normalized_utilizations, solve_traffic_equations

# Wealths are exact zeros (bankrupt peers) or values far from the subnormal
# range: scaling a subnormal like 5e-324 underflows (5e-324 * 0.5 rounds to
# 0.0), which breaks scale-invariance for float reasons unrelated to the
# metrics under test.
wealth_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=60),
    elements=st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    ),
)

utilization_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=12),
    elements=st.floats(min_value=0.05, max_value=1.0),
)


class TestGiniProperties:
    @given(wealth_arrays)
    @settings(max_examples=60, deadline=None)
    def test_gini_bounded(self, wealths):
        value = gini_index(wealths)
        assert 0.0 <= value <= 1.0

    @given(wealth_arrays, st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_gini_scale_invariant(self, wealths, scale):
        assert gini_index(wealths) == np.float64(gini_index(wealths * scale)).item() or abs(
            gini_index(wealths) - gini_index(wealths * scale)
        ) < 1e-9

    @given(wealth_arrays, st.floats(min_value=0.1, max_value=1e3))
    @settings(max_examples=40, deadline=None)
    def test_adding_constant_reduces_or_keeps_gini(self, wealths, shift):
        # Adding the same amount to everyone cannot increase relative inequality.
        assert gini_index(wealths + shift) <= gini_index(wealths) + 1e-9

    @given(wealth_arrays)
    @settings(max_examples=40, deadline=None)
    def test_hoover_below_gini_plus_eps(self, wealths):
        # For any distribution the Hoover index never exceeds the Gini index.
        assert hoover_index(wealths) <= gini_index(wealths) + 1e-9

    @given(wealth_arrays)
    @settings(max_examples=40, deadline=None)
    def test_lorenz_curve_is_convex_monotone(self, wealths):
        population, cumulative = lorenz_curve(wealths)
        assert np.all(np.diff(cumulative) >= -1e-12)
        assert np.all(cumulative <= population + 1e-9)

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=2, max_value=30),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_gini_from_pmf_bounded(self, raw):
        if raw.sum() <= 0:
            return
        value = gini_from_pmf(raw)
        assert 0.0 <= value <= 1.0


class TestRoutingAndTrafficProperties:
    @given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_stochastic_rows_sum_to_one(self, size, seed):
        routing = RoutingMatrix.random_stochastic(size, density=0.5, seed=seed)
        np.testing.assert_allclose(routing.matrix.sum(axis=1), 1.0, atol=1e-9)

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_lemma1_positive_solution_exists(self, size, seed):
        routing = RoutingMatrix.random_stochastic(size, density=0.6, seed=seed)
        solution = solve_traffic_equations(routing)
        assert solution.residual < 1e-6
        assert np.all(solution.arrival_rates > 0)

    @given(utilization_arrays)
    @settings(max_examples=30, deadline=None)
    def test_normalized_utilizations_in_unit_interval(self, rates):
        utilizations = normalized_utilizations(rates, np.ones_like(rates))
        assert np.all(utilizations > 0)
        assert np.all(utilizations <= 1.0 + 1e-12)
        assert utilizations.max() == 1.0


class TestClosedNetworkProperties:
    @given(utilization_arrays, st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_mean_queue_lengths_sum_to_population(self, utilizations, total_jobs):
        network = ClosedJacksonNetwork(utilizations, total_jobs)
        assert network.mean_queue_lengths().sum() == np.float64(total_jobs).item() or abs(
            network.mean_queue_lengths().sum() - total_jobs
        ) < 1e-6

    @given(utilization_arrays, st.integers(min_value=1, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_marginals_are_distributions(self, utilizations, total_jobs):
        network = ClosedJacksonNetwork(utilizations, total_jobs)
        pmf = network.marginal_pmf(0)
        assert abs(pmf.sum() - 1.0) < 1e-8
        assert np.all(pmf >= 0)

    @given(utilization_arrays, st.integers(min_value=1, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_buzen_matches_mva(self, utilizations, total_jobs):
        service_rates = np.ones_like(utilizations)
        network = ClosedJacksonNetwork.from_rates(utilizations, service_rates, total_jobs)
        mva = mva_mean_queue_lengths(utilizations, service_rates, total_jobs)
        np.testing.assert_allclose(network.mean_queue_lengths(), mva, rtol=1e-5, atol=1e-8)


class TestCondensationProperties:
    @given(utilization_arrays, st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_grand_canonical_wealth_accounts_for_total(self, utilizations, total):
        wealth = grand_canonical_wealth(utilizations, total)
        assert np.all(wealth >= -1e-9)
        assert abs(wealth.sum() - total) / max(total, 1.0) < 1e-4

    @given(utilization_arrays, st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_fugacity_in_unit_interval(self, utilizations, total):
        fugacity = solve_fugacity(utilizations, total)
        assert 0.0 <= fugacity <= 1.0


class TestLedgerProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation_under_arbitrary_transfers(self, operations):
        ledger = CreditLedger(record_transactions=False)
        for peer in range(10):
            ledger.open_wallet(peer, 50.0)
        for buyer, seller, amount in operations:
            if buyer == seller:
                continue
            if ledger.wallet(buyer).can_afford(amount):
                ledger.transfer(buyer, seller, amount)
        assert ledger.conservation_error() < 1e-6
        assert all(balance >= 0 for balance in ledger.balances().values())
