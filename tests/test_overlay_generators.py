"""Tests for overlay topology generators."""

import numpy as np
import pytest

from repro.overlay import (
    barabasi_albert_topology,
    complete_topology,
    erdos_renyi_topology,
    random_regular_topology,
    ring_topology,
    scale_free_topology,
)
from repro.overlay.generators import powerlaw_degree_sequence


class TestPowerlawDegreeSequence:
    def test_mean_degree_close_to_target(self):
        degrees = powerlaw_degree_sequence(500, shape=2.5, mean_degree=20.0, seed=1)
        assert abs(degrees.mean() - 20.0) < 4.0

    def test_even_total_degree(self):
        degrees = powerlaw_degree_sequence(101, seed=2)
        assert degrees.sum() % 2 == 0

    def test_min_degree_respected(self):
        degrees = powerlaw_degree_sequence(300, mean_degree=10.0, min_degree=3, seed=3)
        assert degrees.min() >= 3

    def test_heavy_tail_present(self):
        degrees = powerlaw_degree_sequence(1000, shape=2.5, mean_degree=20.0, seed=4)
        assert degrees.max() > 3 * degrees.mean()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(1)
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(100, mean_degree=200.0)
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(100, min_degree=0)


class TestScaleFree:
    def test_paper_parameters(self):
        topo = scale_free_topology(300, seed=5)
        assert topo.num_peers == 300
        assert topo.is_connected()
        assert 10.0 < topo.mean_degree() < 30.0

    def test_reproducible_with_seed(self):
        a = scale_free_topology(100, seed=6)
        b = scale_free_topology(100, seed=6)
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = scale_free_topology(100, seed=6)
        b = scale_free_topology(100, seed=7)
        assert list(a.edges()) != list(b.edges())

    def test_degree_distribution_is_skewed(self):
        topo = scale_free_topology(400, seed=8)
        degrees = np.array(list(topo.degrees().values()))
        assert degrees.max() > 2.5 * degrees.mean()


class TestOtherGenerators:
    def test_barabasi_albert(self):
        topo = barabasi_albert_topology(100, attachments=5, seed=1)
        assert topo.num_peers == 100
        assert topo.is_connected()

    def test_barabasi_albert_invalid(self):
        with pytest.raises(ValueError):
            barabasi_albert_topology(5, attachments=10)

    def test_erdos_renyi_connected_and_sized(self):
        topo = erdos_renyi_topology(200, mean_degree=8.0, seed=2)
        assert topo.num_peers == 200
        assert topo.is_connected()
        assert 4.0 < topo.mean_degree() < 14.0

    def test_random_regular_degrees(self):
        topo = random_regular_topology(50, degree=6, seed=3)
        assert all(degree == 6 for degree in topo.degrees().values())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            random_regular_topology(7, degree=3)

    def test_ring(self):
        topo = ring_topology(10)
        assert topo.num_edges == 10
        assert all(degree == 2 for degree in topo.degrees().values())
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_complete(self):
        topo = complete_topology(6)
        assert topo.num_edges == 15
        assert all(degree == 5 for degree in topo.degrees().values())
