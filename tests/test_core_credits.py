"""Tests for wallets and the conservation-checked credit ledger."""

import pytest

from repro.core import CreditLedger, InsufficientCreditsError, Wallet


class TestWallet:
    def test_initial_balance(self):
        wallet = Wallet(1, 50.0)
        assert wallet.balance == 50.0
        assert wallet.peer_id == 1

    def test_negative_initial_balance_rejected(self):
        with pytest.raises(ValueError):
            Wallet(1, -5.0)

    def test_credit_and_debit(self):
        wallet = Wallet(1, 10.0)
        wallet.credit(5.0)
        wallet.debit(12.0)
        assert wallet.balance == pytest.approx(3.0)
        assert wallet.total_earned == 5.0
        assert wallet.total_spent == 12.0

    def test_overdraft_rejected_and_state_unchanged(self):
        wallet = Wallet(1, 1.0)
        with pytest.raises(InsufficientCreditsError):
            wallet.debit(2.0)
        assert wallet.balance == 1.0
        assert wallet.total_spent == 0.0

    def test_negative_amounts_rejected(self):
        wallet = Wallet(1, 1.0)
        with pytest.raises(ValueError):
            wallet.credit(-1.0)
        with pytest.raises(ValueError):
            wallet.debit(-1.0)

    def test_can_afford(self):
        wallet = Wallet(1, 3.0)
        assert wallet.can_afford(3.0)
        assert not wallet.can_afford(3.5)
        assert not wallet.can_afford(-1.0)


class TestLedgerWallets:
    def test_open_and_query(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 10.0)
        ledger.open_wallet(2, 20.0)
        assert ledger.peer_ids() == [1, 2]
        assert ledger.balances() == {1: 10.0, 2: 20.0}
        assert ledger.balance_vector([2, 1]) == [20.0, 10.0]
        assert ledger.has_wallet(1) and not ledger.has_wallet(3)

    def test_duplicate_wallet_rejected(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 1.0)
        with pytest.raises(ValueError):
            ledger.open_wallet(1, 1.0)

    def test_close_wallet_destroys_credits(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 30.0)
        destroyed = ledger.close_wallet(1)
        assert destroyed == 30.0
        assert ledger.total_destroyed == 30.0
        assert not ledger.has_wallet(1)
        ledger.verify_conservation()


class TestLedgerTransfers:
    def test_transfer_moves_credits(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 10.0)
        ledger.open_wallet(2, 0.0)
        transaction = ledger.transfer(1, 2, 4.0, time=3.0, chunk_index=7)
        assert ledger.wallet(1).balance == 6.0
        assert ledger.wallet(2).balance == 4.0
        assert transaction.chunk_index == 7
        assert ledger.transactions[-1] is transaction

    def test_transfer_insufficient_funds_is_atomic(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 1.0)
        ledger.open_wallet(2, 0.0)
        with pytest.raises(InsufficientCreditsError):
            ledger.transfer(1, 2, 5.0)
        assert ledger.wallet(1).balance == 1.0
        assert ledger.wallet(2).balance == 0.0

    def test_recording_can_be_disabled(self):
        ledger = CreditLedger(record_transactions=False)
        ledger.open_wallet(1, 5.0)
        ledger.open_wallet(2, 5.0)
        ledger.transfer(1, 2, 1.0)
        assert ledger.transactions == []

    def test_negative_transfer_rejected(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 5.0)
        ledger.open_wallet(2, 5.0)
        with pytest.raises(ValueError):
            ledger.transfer(1, 2, -1.0)


class TestSystemPoolAndInjection:
    def test_tax_collection_and_rebate(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 10.0)
        ledger.open_wallet(2, 0.0)
        ledger.collect_to_pool(1, 4.0)
        assert ledger.system_pool == 4.0
        ledger.disburse_from_pool(2, 3.0)
        assert ledger.system_pool == pytest.approx(1.0)
        assert ledger.wallet(2).balance == 3.0
        ledger.verify_conservation()

    def test_disburse_more_than_pool_rejected(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 10.0)
        ledger.collect_to_pool(1, 2.0)
        with pytest.raises(ValueError):
            ledger.disburse_from_pool(1, 5.0)

    def test_injection_mints_credits(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 0.0)
        ledger.inject(1, 7.0)
        assert ledger.wallet(1).balance == 7.0
        assert ledger.total_minted == 7.0
        ledger.verify_conservation()

    def test_negative_injection_rejected(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 0.0)
        with pytest.raises(ValueError):
            ledger.inject(1, -3.0)


class TestConservation:
    def test_conservation_after_many_operations(self):
        ledger = CreditLedger(record_transactions=False)
        for peer in range(10):
            ledger.open_wallet(peer, 100.0)
        import numpy as np

        rng = np.random.default_rng(1)
        for _ in range(500):
            buyer, seller = rng.choice(10, size=2, replace=False)
            amount = float(rng.random() * 3.0)
            if ledger.wallet(int(buyer)).can_afford(amount):
                ledger.transfer(int(buyer), int(seller), amount)
        ledger.close_wallet(3)
        ledger.inject(5, 42.0)
        assert ledger.conservation_error() < 1e-6
        ledger.verify_conservation()

    def test_total_in_circulation_includes_pool(self):
        ledger = CreditLedger()
        ledger.open_wallet(1, 10.0)
        ledger.collect_to_pool(1, 4.0)
        assert ledger.total_in_circulation() == pytest.approx(10.0)
