"""End-to-end tests for ``repro analyze``: exit codes, JSON report,
baseline round-trips, and the self-check that the repository itself is
clean modulo the committed baseline."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

VIOLATING = """
import time

def stamp():
    return time.time()
"""

CLEAN = """
import time

def measure():
    started = time.perf_counter()
    return time.perf_counter() - started
"""


def _write_fixture(root, source, name="fixture.py"):
    target = root / "src" / "repro" / "runner" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


class TestAnalyzeCommand:
    def test_findings_exit_nonzero(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        code = main(["analyze", str(target), "--baseline", str(tmp_path / "base.json")])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET003" in out
        assert "1 finding(s)" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, CLEAN)
        code = main(["analyze", str(target), "--baseline", str(tmp_path / "base.json")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope"), "--baseline", str(tmp_path / "b.json")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, CLEAN)
        code = main(["analyze", str(target), "--rules", "DET999"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_rules_filter(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        base = str(tmp_path / "base.json")
        assert main(["analyze", str(target), "--rules", "DET001", "--baseline", base]) == 0
        assert main(["analyze", str(target), "--rules", "DET003", "--baseline", base]) == 1
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "PICKLE001", "OBS001", "KERNEL001"):
            assert rule_id in out

    def test_json_report_structure(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        report_path = tmp_path / "report.json"
        code = main(
            [
                "analyze",
                str(target),
                "--baseline",
                str(tmp_path / "base.json"),
                "--json",
                str(report_path),
            ]
        )
        capsys.readouterr()
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert payload["version"] == 1
        assert payload["files_analyzed"] == 1
        assert payload["summary"]["active"] == 1
        assert payload["summary"]["per_rule"] == {"DET003": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET003"
        assert finding["status"] == "active"
        assert finding["content_hash"]
        assert finding["snippet"] == "return time.time()"


class TestBaselineRoundTrip:
    def test_write_then_gate(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        base = tmp_path / "base.json"
        assert main(["analyze", str(target), "--baseline", str(base), "--write-baseline"]) == 0
        capsys.readouterr()
        # The grandfathered finding no longer gates...
        assert main(["analyze", str(target), "--baseline", str(base)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but a *new* finding still does.
        _write_fixture(tmp_path, VIOLATING, name="fresh.py")
        assert main(["analyze", str(target.parent), "--baseline", str(base)]) == 1
        capsys.readouterr()

    def test_baseline_survives_line_drift_but_not_content_change(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        base = tmp_path / "base.json"
        main(["analyze", str(target), "--baseline", str(base), "--write-baseline"])
        # Unrelated lines above shift the finding's line number: still clean.
        target.write_text(
            "# a new comment\n# another\n" + textwrap.dedent(VIOLATING), encoding="utf-8"
        )
        assert main(["analyze", str(target), "--baseline", str(base)]) == 0
        # Changing the flagged line itself re-surfaces the finding.
        target.write_text(
            textwrap.dedent(VIOLATING).replace("time.time()", "time.time() + 1"),
            encoding="utf-8",
        )
        assert main(["analyze", str(target), "--baseline", str(base)]) == 1
        capsys.readouterr()

    def test_regeneration_preserves_justifications(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        base = tmp_path / "base.json"
        main(["analyze", str(target), "--baseline", str(base), "--write-baseline"])
        payload = json.loads(base.read_text())
        payload["entries"][0]["justification"] = "legacy timestamp, tracked in #42"
        base.write_text(json.dumps(payload))
        main(["analyze", str(target), "--baseline", str(base), "--write-baseline"])
        regenerated = json.loads(base.read_text())
        assert regenerated["entries"][0]["justification"] == "legacy timestamp, tracked in #42"
        capsys.readouterr()

    def test_no_baseline_flag_ignores_entries(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, VIOLATING)
        base = tmp_path / "base.json"
        main(["analyze", str(target), "--baseline", str(base), "--write-baseline"])
        assert main(["analyze", str(target), "--baseline", str(base), "--no-baseline"]) == 1
        capsys.readouterr()

    def test_unsupported_version_is_a_clean_error(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, CLEAN)
        base = tmp_path / "base.json"
        base.write_text('{"version": 99, "entries": []}')
        code = main(["analyze", str(target), "--baseline", str(base)])
        assert code == 2
        assert "baseline format version" in capsys.readouterr().err


class TestSuppressionRoundTrip:
    def test_suppression_lifecycle(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        # 1. violation gates
        target = _write_fixture(tmp_path, VIOLATING)
        assert main(["analyze", str(target), "--baseline", base]) == 1
        # 2. justified suppression waves it through
        target.write_text(
            textwrap.dedent(VIOLATING).replace(
                "return time.time()",
                "return time.time()  # repro: noqa DET003 -- demo fixture",
            ),
            encoding="utf-8",
        )
        assert main(["analyze", str(target), "--baseline", base]) == 0
        assert "1 suppressed" in capsys.readouterr().out
        # 3. fixing the code makes the suppression stale: gates again
        target.write_text(
            textwrap.dedent(CLEAN).replace(
                "return time.perf_counter() - started",
                "return time.perf_counter() - started  # repro: noqa DET003 -- demo fixture",
            ),
            encoding="utf-8",
        )
        code = main(["analyze", str(target), "--baseline", base])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOQA002" in out


ALPHA = """
def helper():
    return 1
"""

BETA = """
from repro.runner.alpha import helper

def run():
    return helper()
"""


def _project_tree(root):
    _write_fixture(root, ALPHA, name="alpha.py")
    _write_fixture(root, BETA, name="beta.py")
    _write_fixture(root, VIOLATING, name="gamma.py")
    return root / "src"


def _analyze(root, *extra, json_to=None):
    argv = [
        "analyze",
        str(root / "src"),
        "--baseline",
        str(root / "base.json"),
        "--cache-dir",
        str(root / "cache"),
        *extra,
    ]
    if json_to is not None:
        argv += ["--json", str(json_to)]
    return main(argv)


class TestIncrementalCache:
    def test_warm_run_reparses_nothing(self, tmp_path, capsys):
        _project_tree(tmp_path)
        report_path = tmp_path / "report.json"
        assert _analyze(tmp_path, json_to=report_path) == 1
        cold = json.loads(report_path.read_text())["project_model"]
        assert cold["modules_reparsed"] == 3
        assert cold["modules_cached"] == 0
        # Second run, nothing changed: every summary replays from disk.
        assert _analyze(tmp_path, json_to=report_path) == 1
        warm = json.loads(report_path.read_text())["project_model"]
        assert warm["modules_reparsed"] == 0
        assert warm["modules_cached"] == 3
        out = capsys.readouterr().out
        assert "3 from cache" in out

    def test_editing_one_module_reparses_only_it(self, tmp_path, capsys):
        _project_tree(tmp_path)
        report_path = tmp_path / "report.json"
        _analyze(tmp_path, json_to=report_path)
        _write_fixture(tmp_path, ALPHA + "\nX = 2\n", name="alpha.py")
        _analyze(tmp_path, json_to=report_path)
        model = json.loads(report_path.read_text())["project_model"]
        assert model["modules_reparsed"] == 1
        assert model["modules_cached"] == 2
        capsys.readouterr()

    def test_no_cache_flag_always_reparses(self, tmp_path, capsys):
        _project_tree(tmp_path)
        report_path = tmp_path / "report.json"
        _analyze(tmp_path, "--no-cache", json_to=report_path)
        model = json.loads(report_path.read_text())["project_model"]
        assert model["modules_reparsed"] == 3
        # --no-cache neither reads nor writes the cache directory.
        assert not (tmp_path / "cache").exists()
        _analyze(tmp_path, "--no-cache", json_to=report_path)
        again = json.loads(report_path.read_text())["project_model"]
        assert again["modules_reparsed"] == 3
        assert not (tmp_path / "cache").exists()
        capsys.readouterr()


class TestChangedOnly:
    def test_changed_selects_edits_and_their_reverse_importers(self, tmp_path, capsys):
        _project_tree(tmp_path)
        report_path = tmp_path / "report.json"
        # Cold full run: gamma's DET003 gates.
        assert _analyze(tmp_path) == 1
        # Only alpha changes (still clean).  --changed restricts reporting
        # to alpha plus beta (its importer) — gamma's standing finding is
        # out of the diff's blast radius and must not gate this run.
        _write_fixture(tmp_path, ALPHA + "\nX = 2\n", name="alpha.py")
        assert _analyze(tmp_path, "--changed", json_to=report_path) == 0
        payload = json.loads(report_path.read_text())
        model = payload["project_model"]
        assert model["changed_only"] is True
        assert model["files_selected"] == 2
        assert model["modules_reparsed"] == 1
        selected = {f["path"] for f in payload["findings"]}
        assert not any(path.endswith("gamma.py") for path in selected)
        out = capsys.readouterr().out
        assert "--changed selected 2 file(s)" in out

    def test_changed_still_catches_violations_in_importers(self, tmp_path, capsys):
        _project_tree(tmp_path)
        _analyze(tmp_path)
        # beta gains a violation; only beta changed, so --changed selects
        # it and the finding gates.
        _write_fixture(tmp_path, BETA + "\nimport time\nNOW = time.time()\n", name="beta.py")
        assert _analyze(tmp_path, "--changed") == 1
        out = capsys.readouterr().out
        assert "DET003" in out

    def test_cold_cache_falls_back_to_full_run(self, tmp_path, capsys):
        _project_tree(tmp_path)
        # No prior cache: every file counts as changed, so --changed
        # degrades to a full run and gamma still gates.
        assert _analyze(tmp_path, "--changed") == 1
        capsys.readouterr()


class TestSelfCheck:
    @pytest.mark.parametrize(
        "paths",
        [
            ("src",),
            ("tests",),
            ("benchmarks",),
            ("examples",),
            ("src", "tests", "benchmarks", "examples"),
        ],
        ids=lambda paths: "+".join(paths),
    )
    def test_repository_is_clean_modulo_committed_baseline(
        self, paths, tmp_path, monkeypatch, capsys
    ):
        """`repro analyze src tests benchmarks examples` — the CI gate — passes."""
        monkeypatch.chdir(REPO_ROOT)
        code = main(["analyze", *paths, "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0, out

    def test_committed_baseline_entries_all_carry_justifications(self):
        baseline = Baseline.load(REPO_ROOT / ".repro-analysis-baseline.json")
        for entry in baseline.entries:
            assert entry.justification, (
                f"baseline entry {entry.rule} at {entry.path} has no written "
                "justification — grandfathered findings must say why"
            )

    def test_allowed_contexts_are_load_bearing(self, monkeypatch):
        """Every configured exemption still covers a real finding.

        If a refactor removes the flagged code, the allowed context must be
        retired too — this is NOQA002 for config-level exemptions.
        """
        from repro.analysis import DEFAULT_CONFIG, AnalysisConfig

        monkeypatch.chdir(REPO_ROOT)
        bare = AnalysisConfig(rule_scopes=DEFAULT_CONFIG.rule_scopes, allowed_contexts={})
        report = analyze_paths(["src"], config=bare)
        uncovered = {(f.rule, f.path) for f in report.active}
        for rule_id, contexts in DEFAULT_CONFIG.allowed_contexts.items():
            for context in contexts:
                assert any(
                    rule == rule_id and path.endswith(context.path.split("/")[-1])
                    for rule, path in uncovered
                ), f"allowed context {rule_id}:{context.qualname} exempts nothing"
