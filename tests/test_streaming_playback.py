"""Tests for playback buffering and continuity accounting."""

import pytest

from repro.streaming import BufferMap, PlaybackBuffer


def filled_map(indices):
    buffer_map = BufferMap()
    for index in indices:
        buffer_map.add(index)
    return buffer_map


class TestPlaybackStart:
    def test_does_not_start_without_enough_chunks(self):
        playback = PlaybackBuffer(startup_chunks=3)
        assert playback.maybe_start(filled_map([0, 1]), time=5.0) is False
        assert not playback.started

    def test_starts_with_contiguous_prefix(self):
        playback = PlaybackBuffer(startup_chunks=3)
        playback.note_join(0.0)
        assert playback.maybe_start(filled_map([0, 1, 2]), time=4.0)
        assert playback.started
        assert playback.stats.startup_delay == pytest.approx(4.0)

    def test_gap_prevents_start(self):
        playback = PlaybackBuffer(startup_chunks=3)
        assert playback.maybe_start(filled_map([0, 2, 3]), time=1.0) is False

    def test_join_index_offsets_requirement(self):
        playback = PlaybackBuffer(startup_chunks=2, join_index=10)
        assert playback.maybe_start(filled_map([10, 11]), time=1.0)
        assert playback.playback_point == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(playback_rate=0.0)
        with pytest.raises(ValueError):
            PlaybackBuffer(startup_chunks=-1)


class TestPlaybackAdvance:
    def test_consumes_at_playback_rate(self):
        playback = PlaybackBuffer(playback_rate=1.0, startup_chunks=1)
        buffer_map = filled_map(range(10))
        playback.maybe_start(buffer_map, time=0.0)
        missed = playback.advance(buffer_map, time=5.0)
        assert missed == []
        assert playback.stats.chunks_played == 5
        assert playback.playback_point == 5
        assert playback.stats.continuity == 1.0

    def test_missing_chunks_counted_and_skipped(self):
        playback = PlaybackBuffer(playback_rate=1.0, startup_chunks=1)
        buffer_map = filled_map([0, 1, 3])
        playback.maybe_start(buffer_map, time=0.0)
        missed = playback.advance(buffer_map, time=4.0)
        assert missed == [2]
        assert playback.stats.chunks_missed == 1
        assert playback.stats.stall_events == 1
        assert playback.stats.continuity == pytest.approx(3 / 4)

    def test_advance_before_start_is_noop(self):
        playback = PlaybackBuffer(startup_chunks=5)
        missed = playback.advance(filled_map([0]), time=10.0)
        assert missed == []
        assert playback.stats.chunks_played == 0

    def test_partial_interval_consumes_nothing(self):
        playback = PlaybackBuffer(playback_rate=1.0, startup_chunks=1)
        buffer_map = filled_map(range(5))
        playback.maybe_start(buffer_map, time=0.0)
        playback.advance(buffer_map, time=0.4)
        assert playback.stats.chunks_played == 0

    def test_continuity_vacuously_one_before_playback(self):
        assert PlaybackBuffer().stats.continuity == 1.0

    def test_repeated_advances_accumulate(self):
        playback = PlaybackBuffer(playback_rate=2.0, startup_chunks=1)
        buffer_map = filled_map(range(20))
        playback.maybe_start(buffer_map, time=0.0)
        playback.advance(buffer_map, time=1.0)
        playback.advance(buffer_map, time=3.0)
        assert playback.stats.chunks_played == 6
