"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "overlay") == derive_seed(42, "overlay")

    def test_different_labels_differ(self):
        assert derive_seed(42, "overlay") != derive_seed(42, "pricing")

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_result_fits_in_63_bits(self):
        for seed in (0, 1, 2**40, 123456789):
            child = derive_seed(seed, "label")
            assert 0 <= child < 2**63

    def test_non_string_labels_accepted(self):
        assert derive_seed(7, "peer", 42) == derive_seed(7, "peer", 42)


class TestMakeRng:
    def test_same_seed_same_draws(self):
        a = make_rng(5).random(10)
        b = make_rng(5).random(10)
        np.testing.assert_array_equal(a, b)

    def test_labels_produce_independent_streams(self):
        a = make_rng(5, "x").random(10)
        b = make_rng(5, "y").random(10)
        assert not np.allclose(a, b)

    def test_none_seed_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSeedSequenceFactory:
    def test_streams_are_deterministic_across_factories(self):
        a = SeedSequenceFactory(9).stream("sim").random(5)
        b = SeedSequenceFactory(9).stream("sim").random(5)
        np.testing.assert_array_equal(a, b)

    def test_duplicate_label_rejected(self):
        factory = SeedSequenceFactory(3)
        factory.stream("churn")
        with pytest.raises(ValueError):
            factory.stream("churn")

    def test_duplicate_label_allowed_when_requested(self):
        factory = SeedSequenceFactory(3)
        factory.stream("churn")
        factory.stream("churn", allow_reissue=True)

    def test_issued_labels_tracked(self):
        factory = SeedSequenceFactory(1)
        factory.stream("a")
        factory.stream("b", 2)
        assert factory.issued_labels == {("a",), ("b", "2")}

    def test_child_seed_matches_derive_seed(self):
        factory = SeedSequenceFactory(11)
        assert factory.child_seed("x") == derive_seed(11, "x")

    def test_base_seed_property(self):
        assert SeedSequenceFactory(77).base_seed == 77
