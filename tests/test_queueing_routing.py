"""Tests for the routing (credit transfer probability) matrix."""

import numpy as np
import pytest

from repro.overlay import OverlayTopology, ring_topology, scale_free_topology
from repro.queueing import RoutingMatrix


class TestConstruction:
    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            RoutingMatrix([[0.5, 0.2], [0.5, 0.5]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RoutingMatrix([[1.2, -0.2], [0.5, 0.5]])

    def test_accepts_and_exposes_matrix(self):
        routing = RoutingMatrix([[0.0, 1.0], [1.0, 0.0]])
        assert routing.size == 2
        assert routing.probability(0, 1) == 1.0
        np.testing.assert_allclose(routing.row(0), [0.0, 1.0])

    def test_matrix_property_returns_copy(self):
        routing = RoutingMatrix([[0.0, 1.0], [1.0, 0.0]])
        matrix = routing.matrix
        matrix[0, 0] = 99.0
        assert routing.probability(0, 0) == 0.0


class TestUniformOverNeighbors:
    def test_rows_split_evenly(self):
        topology = ring_topology(4)
        routing = RoutingMatrix.uniform_over_neighbors(topology)
        for i in range(4):
            row = routing.row(i)
            assert row[i] == 0.0
            assert sorted(row)[-2:] == [0.5, 0.5]

    def test_reserve_fraction_on_diagonal(self):
        topology = ring_topology(4)
        routing = RoutingMatrix.uniform_over_neighbors(topology, reserve_fraction=0.2)
        np.testing.assert_allclose(routing.self_loop_fractions(), 0.2)
        np.testing.assert_allclose(routing.matrix.sum(axis=1), 1.0)

    def test_isolated_peer_gets_self_loop(self):
        topology = OverlayTopology([0, 1, 2])
        topology.add_edge(0, 1)
        routing = RoutingMatrix.uniform_over_neighbors(topology)
        assert routing.probability(2, 2) == 1.0


class TestWeightedOverNeighbors:
    def test_weights_respected(self):
        topology = OverlayTopology.from_edges(3, [(0, 1), (0, 2)])
        routing = RoutingMatrix.weighted_over_neighbors(topology, weights={1: 3.0, 2: 1.0})
        assert routing.probability(0, 1) == pytest.approx(0.75)
        assert routing.probability(0, 2) == pytest.approx(0.25)

    def test_zero_weights_fall_back_to_uniform(self):
        topology = OverlayTopology.from_edges(3, [(0, 1), (0, 2)])
        routing = RoutingMatrix.weighted_over_neighbors(topology, weights={})
        assert routing.probability(0, 1) == pytest.approx(0.5)


class TestFromPurchaseRates:
    def test_rows_normalised(self):
        routing = RoutingMatrix.from_purchase_rates([[0.0, 2.0, 2.0], [1.0, 0.0, 3.0], [0, 0, 0]])
        assert routing.probability(0, 1) == pytest.approx(0.5)
        assert routing.probability(1, 2) == pytest.approx(0.75)
        assert routing.probability(2, 2) == 1.0  # all-zero row becomes a self loop

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            RoutingMatrix.from_purchase_rates([[0.0, -1.0], [1.0, 0.0]])


class TestRandomStochastic:
    def test_rows_sum_to_one(self):
        routing = RoutingMatrix.random_stochastic(20, density=0.3, seed=1)
        np.testing.assert_allclose(routing.matrix.sum(axis=1), 1.0)

    def test_reserve_fraction_applied(self):
        routing = RoutingMatrix.random_stochastic(10, reserve_fraction=0.4, seed=2)
        assert np.all(np.diag(routing.matrix) >= 0.4 - 1e-9)

    def test_reproducible(self):
        a = RoutingMatrix.random_stochastic(15, seed=3).matrix
        b = RoutingMatrix.random_stochastic(15, seed=3).matrix
        np.testing.assert_array_equal(a, b)


class TestDerivedMatrices:
    def test_with_reserve_fraction(self):
        topology = ring_topology(5)
        routing = RoutingMatrix.uniform_over_neighbors(topology).with_reserve_fraction(0.3)
        np.testing.assert_allclose(routing.self_loop_fractions(), 0.3)
        np.testing.assert_allclose(routing.matrix.sum(axis=1), 1.0)

    def test_restricted_to_subset(self):
        routing = RoutingMatrix.uniform_over_neighbors(scale_free_topology(30, mean_degree=6, seed=4))
        sub = routing.restricted_to(range(10))
        assert sub.size == 10
        np.testing.assert_allclose(sub.matrix.sum(axis=1), 1.0)

    def test_is_irreducible_ring(self):
        routing = RoutingMatrix.uniform_over_neighbors(ring_topology(6))
        assert routing.is_irreducible()

    def test_is_irreducible_detects_disconnection(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = matrix[1, 0] = 1.0
        matrix[2, 3] = matrix[3, 2] = 1.0
        assert not RoutingMatrix(matrix).is_irreducible()

    def test_to_dict(self):
        routing = RoutingMatrix([[0.5, 0.5], [1.0, 0.0]])
        data = routing.to_dict()
        assert data["size"] == 2
        assert data["matrix"][0] == [0.5, 0.5]
