"""Smoke tests for the experiment registry and every figure runner.

These run each experiment at the ``smoke`` scale, which keeps the entire
file to a few tens of seconds while still executing the full code path of
every figure reproduction.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    describe_experiments,
    get_experiment,
    run_experiment,
)


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {"fig1", "fig2", "fig3", "fig4", "fig5_6", "fig7", "fig8", "fig9", "fig10", "fig11"}
        assert expected == set(EXPERIMENTS)

    def test_describe_experiments(self):
        descriptions = describe_experiments()
        assert len(descriptions) == len(EXPERIMENTS)
        assert all({"id", "section", "title"} <= set(entry) for entry in descriptions)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")


class TestExperimentResultHelpers:
    def test_table_and_series_lookup(self):
        result = run_experiment("fig4", scale="smoke", seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.table() is result.tables[0]
        series = result.series_by_label(result.series[0].label)
        assert series is result.series[0]
        with pytest.raises(KeyError):
            result.series_by_label("not a label")
        with pytest.raises(KeyError):
            result.table("missing fragment")
        assert "Fig. 4" in result.format()


class TestAnalyticExperiments:
    def test_fig2_gini_values_valid(self):
        result = run_experiment("fig2", scale="smoke", seed=1)
        for row in result.table():
            assert 0.0 < row["gini_exact"] < 1.0
            assert 0.0 < row["gini_eq8"] < 1.0

    def test_fig3_gini_increases_with_wealth(self):
        result = run_experiment("fig3", scale="smoke", seed=1)
        for series in result.series:
            assert series.y[-1] >= series.y[0] - 0.05

    def test_fig4_efficiency_monotone(self):
        result = run_experiment("fig4", scale="smoke", seed=1)
        values = result.series_by_label("1 - e^{-c} (Eq. 9)").y
        assert values == sorted(values)


class TestSimulationExperiments:
    def test_fig1_condensed_case_more_skewed(self):
        result = run_experiment("fig1", scale="smoke", seed=2)
        rows = {row["case"]: row for row in result.table()}
        condensed = rows["condensed (non-uniform prices)"]
        healthy = rows["healthy (uniform prices)"]
        assert condensed["wealth_gini"] > healthy["wealth_gini"] - 0.1

    def test_fig5_6_produces_snapshots(self):
        result = run_experiment("fig5_6", scale="smoke", seed=2)
        assert len(result.series) >= 4
        assert len(result.table()) == 2

    def test_fig7_and_fig8_converge(self):
        for experiment_id in ("fig7", "fig8"):
            result = run_experiment(experiment_id, scale="smoke", seed=2)
            assert len(result.series) == 2
            for row in result.table():
                assert 0.0 <= row["stabilized_gini"] <= 1.0

    def test_fig9_taxation_reduces_gini(self):
        result = run_experiment("fig9", scale="smoke", seed=2)
        rows = {row["taxation"]: row for row in result.table()}
        baseline = rows["no taxation"]["stabilized_gini"]
        taxed = [row["stabilized_gini"] for label, row in rows.items() if label != "no taxation"]
        assert all(value <= baseline + 0.05 for value in taxed)

    def test_fig10_dynamic_spending_reduces_gini(self):
        result = run_experiment("fig10", scale="smoke", seed=2)
        rows = {row["spending_policy"]: row for row in result.table()}
        assert (
            rows["with adjustment"]["stabilized_gini"]
            <= rows["without adjustment"]["stabilized_gini"] + 0.05
        )

    def test_fig11_run_point_rejects_churn_params_without_lifespan(self):
        from repro.experiments.fig11_churn import run_point

        with pytest.raises(ValueError, match="mean_lifespan"):
            run_point(scale="smoke", arrival_rate=0.5)
        with pytest.raises(ValueError, match="mean_lifespan"):
            run_point(scale="smoke", rate_factor=2.0)

    def test_fig11_churn_reduces_gini(self):
        result = run_experiment("fig11", scale="smoke", seed=2)
        table1 = result.table("Fig. 11(1)")
        rows = {row["setting"]: row for row in table1}
        static = rows["static topology"]["stabilized_gini"]
        dynamic = [
            row["stabilized_gini"] for label, row in rows.items() if label != "static topology"
        ]
        assert all(value <= static + 0.05 for value in dynamic)
        assert len(result.tables) == 3
