"""Tests for the chunk-level streaming market simulator."""

import numpy as np
import pytest

from repro.core.pricing import PerPeerFlatPricing, UniformPricing
from repro.p2psim import StreamingMarketSimulator, StreamingSimConfig


def small_config(**overrides):
    defaults = dict(
        num_peers=30,
        initial_credits=15.0,
        horizon=120.0,
        topology_mean_degree=8.0,
        sample_interval=30.0,
        upload_capacity=2,
        seed=4,
    )
    defaults.update(overrides)
    return StreamingSimConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingSimConfig(num_peers=1)
        with pytest.raises(ValueError):
            StreamingSimConfig(chunk_rate=0.0)
        with pytest.raises(ValueError):
            StreamingSimConfig(upload_capacity=0)
        with pytest.raises(ValueError):
            StreamingSimConfig(supplier_choice="weird")
        with pytest.raises(ValueError):
            StreamingSimConfig(num_peers=10, topology_mean_degree=30.0)


class TestStreamingRun:
    def test_chunks_flow_and_credits_move(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert result.chunks_delivered > 200
        assert result.spending_rates.sum() > 0
        assert result.earning_rates.sum() > 0

    def test_credit_conservation_without_churn(self):
        config = small_config()
        simulator = StreamingMarketSimulator(config)
        result = simulator.run()
        assert result.final_wealths.sum() == pytest.approx(30 * 15.0, rel=1e-9)
        simulator.ledger.verify_conservation()

    def test_wealth_never_negative(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert np.all(result.final_wealths >= -1e-9)

    def test_deterministic_given_seed(self):
        a = StreamingMarketSimulator.run_config(small_config(seed=9))
        b = StreamingMarketSimulator.run_config(small_config(seed=9))
        np.testing.assert_allclose(a.final_wealths, b.final_wealths)
        assert a.chunks_delivered == b.chunks_delivered

    def test_playback_continuity_reasonable_when_credits_ample(self):
        result = StreamingMarketSimulator.run_config(
            small_config(initial_credits=100.0, horizon=150.0)
        )
        assert float(np.mean(result.continuity)) > 0.5

    def test_recorder_samples_gini_over_time(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert len(result.recorder.gini_series) >= 4
        assert result.recorder.gini_series.y[0] == pytest.approx(0.0, abs=1e-9)

    def test_spending_rate_gini_property(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert 0.0 <= result.spending_rate_gini <= 1.0


class TestEconomicEffects:
    def test_free_chunks_do_not_move_credits(self):
        # With a price of ~0 for every chunk nothing should ever be charged;
        # use per-peer prices far below affordability to check wiring instead:
        config = small_config(pricing=UniformPricing(0.001), initial_credits=1.0)
        result = StreamingMarketSimulator.run_config(config)
        # Everyone can afford ~1000 chunks, so continuity should not be
        # limited by wealth.
        assert float(np.mean(result.continuity)) > 0.4

    def test_broke_peers_cannot_download(self):
        # Expensive chunks and almost no credits: the chunk trade collapses.
        config = small_config(pricing=UniformPricing(50.0), initial_credits=1.0, horizon=80.0)
        result = StreamingMarketSimulator.run_config(config)
        assert result.chunks_delivered < 200
        assert float(np.mean(result.spending_rates)) < 0.1

    def test_heterogeneous_prices_skew_wealth_more_than_uniform(self):
        rng = np.random.default_rng(8)
        prices = {peer: float(1 + rng.poisson(1.0)) for peer in range(30)}
        uniform = StreamingMarketSimulator.run_config(
            small_config(pricing=UniformPricing(1.0), horizon=200.0, initial_credits=30.0)
        )
        heterogeneous = StreamingMarketSimulator.run_config(
            small_config(
                pricing=PerPeerFlatPricing(prices), horizon=200.0, initial_credits=30.0
            )
        )
        assert heterogeneous.final_gini > uniform.final_gini - 0.05

    def test_upload_capacity_limits_per_seller_earnings(self):
        config = small_config(upload_capacity=1, horizon=100.0)
        result = StreamingMarketSimulator.run_config(config)
        # With a cap of one chunk per second and prices of one credit, nobody
        # can earn much faster than one credit per second.
        assert result.earning_rates.max() <= 1.5
