"""Tests for the batched chunk-level streaming market simulator."""

import dataclasses

import numpy as np
import pytest

from repro.core.pricing import PerPeerFlatPricing, UniformPricing
from repro.overlay.churn import ChurnConfig
from repro.p2psim import KernelOptions, StreamingMarketSimulator, StreamingSimConfig


def small_config(**overrides):
    defaults = dict(
        num_peers=30,
        initial_credits=15.0,
        horizon=120.0,
        topology_mean_degree=8.0,
        sample_interval=30.0,
        upload_capacity=2,
        seed=4,
    )
    defaults.update(overrides)
    return StreamingSimConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingSimConfig(num_peers=1)
        with pytest.raises(ValueError):
            StreamingSimConfig(chunk_rate=0.0)
        with pytest.raises(ValueError):
            StreamingSimConfig(upload_capacity=0)
        with pytest.raises(ValueError):
            StreamingSimConfig(supplier_choice="weird")
        with pytest.raises(ValueError):
            StreamingSimConfig(num_peers=10, topology_mean_degree=30.0)

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            StreamingSimConfig(options=KernelOptions(kernel="bogus"))

    def test_accepts_both_kernels_and_churn(self):
        churn = ChurnConfig(arrival_rate=0.5, mean_lifespan=100.0)
        for kernel in ("loop", "vectorized"):
            config = StreamingSimConfig(options=KernelOptions(kernel=kernel), churn=churn)
            assert config.options.kernel == kernel
            assert config.churn is churn

    def test_legacy_kernel_field_warns_and_overrides_options(self):
        with pytest.warns(DeprecationWarning, match="KernelOptions"):
            config = StreamingSimConfig(kernel="loop")
        assert config.options.kernel == "loop"
        with pytest.warns(DeprecationWarning, match="KernelOptions"):
            with pytest.raises(ValueError, match="kernel"):
                StreamingSimConfig(kernel="bogus")


class TestStreamingRun:
    def test_chunks_flow_and_credits_move(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert result.chunks_delivered > 200
        assert result.spending_rates.sum() > 0
        assert result.earning_rates.sum() > 0

    def test_credit_conservation_without_churn(self):
        config = small_config()
        simulator = StreamingMarketSimulator(config)
        result = simulator.run()
        assert result.final_wealths.sum() == pytest.approx(30 * 15.0, rel=1e-9)
        simulator.verify_conservation()

    def test_wealth_never_negative(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert np.all(result.final_wealths >= -1e-9)

    def test_deterministic_given_seed(self):
        a = StreamingMarketSimulator.run_config(small_config(seed=9))
        b = StreamingMarketSimulator.run_config(small_config(seed=9))
        np.testing.assert_allclose(a.final_wealths, b.final_wealths)
        assert a.chunks_delivered == b.chunks_delivered

    def test_playback_continuity_reasonable_when_credits_ample(self):
        result = StreamingMarketSimulator.run_config(
            small_config(initial_credits=100.0, horizon=150.0)
        )
        assert float(np.mean(result.continuity)) > 0.5

    def test_recorder_samples_gini_over_time(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert len(result.recorder.gini_series) >= 4
        assert result.recorder.gini_series.y[0] == pytest.approx(0.0, abs=1e-9)

    def test_spending_rate_gini_property(self):
        result = StreamingMarketSimulator.run_config(small_config())
        assert 0.0 <= result.spending_rate_gini <= 1.0

    def test_snapshots_recorded_at_requested_times(self):
        simulator = StreamingMarketSimulator(
            small_config(), snapshot_times=[30.0, 90.0]
        )
        result = simulator.run()
        assert set(result.recorder.snapshots) == {30.0, 90.0}

    def test_advance_rounds_plus_finalize_equals_run(self):
        whole = StreamingMarketSimulator(small_config()).run()
        split = StreamingMarketSimulator(small_config())
        total = split.total_rounds()
        split.advance_rounds(total // 2)
        split.advance_rounds(total - total // 2)
        chunked = split.finalize()
        assert whole.final_wealths.tobytes() == chunked.final_wealths.tobytes()
        assert whole.chunks_delivered == chunked.chunks_delivered


class TestEconomicEffects:
    def test_free_chunks_do_not_move_credits(self):
        # With a price of ~0 for every chunk nothing should ever be charged;
        # use per-peer prices far below affordability to check wiring instead:
        config = small_config(pricing=UniformPricing(0.001), initial_credits=1.0)
        result = StreamingMarketSimulator.run_config(config)
        # Everyone can afford ~1000 chunks, so continuity should not be
        # limited by wealth.
        assert float(np.mean(result.continuity)) > 0.4

    def test_broke_peers_cannot_download(self):
        # Expensive chunks and almost no credits: the chunk trade collapses.
        config = small_config(pricing=UniformPricing(50.0), initial_credits=1.0, horizon=80.0)
        result = StreamingMarketSimulator.run_config(config)
        assert result.chunks_delivered < 200
        assert float(np.mean(result.spending_rates)) < 0.1

    def test_heterogeneous_prices_skew_wealth_more_than_uniform(self):
        rng = np.random.default_rng(8)
        prices = {peer: float(1 + rng.poisson(1.0)) for peer in range(30)}
        uniform = StreamingMarketSimulator.run_config(
            small_config(pricing=UniformPricing(1.0), horizon=200.0, initial_credits=30.0)
        )
        heterogeneous = StreamingMarketSimulator.run_config(
            small_config(
                pricing=PerPeerFlatPricing(prices), horizon=200.0, initial_credits=30.0
            )
        )
        assert heterogeneous.final_gini > uniform.final_gini - 0.05

    def test_upload_capacity_limits_per_seller_earnings(self):
        config = small_config(upload_capacity=1, horizon=100.0)
        result = StreamingMarketSimulator.run_config(config)
        # With a cap of one chunk per second and prices of one credit, nobody
        # can earn much faster than one credit per second.
        assert result.earning_rates.max() <= 1.5

    def test_upload_capacity_never_exceeded_within_a_tick(self):
        config = small_config(upload_capacity=1, horizon=60.0)
        simulator = StreamingMarketSimulator(config)
        for _ in range(simulator.total_rounds()):
            before = simulator._uploads_total.copy()
            simulator.advance_rounds(1)
            per_tick = simulator._uploads_total - before
            assert per_tick.max() <= config.upload_capacity


class TestChurn:
    def churn_config(self, **overrides):
        defaults = dict(
            churn=ChurnConfig(arrival_rate=0.4, mean_lifespan=60.0),
            horizon=150.0,
        )
        defaults.update(overrides)
        return small_config(**defaults)

    def test_churn_changes_membership_and_counts_events(self):
        simulator = StreamingMarketSimulator(self.churn_config())
        result = simulator.run()
        assert result.joins > 0
        assert result.leaves > 0
        assert result.extras["final_population"] == len(result.final_wealths)
        assert result.extras["final_population"] == simulator.topology.num_peers

    def test_conservation_under_churn_tracks_minted_and_destroyed(self):
        simulator = StreamingMarketSimulator(self.churn_config())
        simulator.run()
        # Joins mint fresh endowments, leaves destroy balances; the open
        # economy's conservation law must still balance exactly.
        simulator.verify_conservation()
        assert simulator._minted > simulator.config.num_peers * simulator.config.initial_credits
        assert simulator._destroyed > 0

    def test_departure_mid_purchase_drops_in_flight_chunks(self):
        # Transfers outlive the scheduling interval, so a departing buyer
        # leaves purchased chunks in flight.  They must be dropped — never
        # crash the delivery, never land on whoever reuses the slot.
        config = self.churn_config(transfer_latency=2.0)
        simulator = StreamingMarketSimulator(config)
        simulator.advance_rounds(10)
        in_flight_slots = {
            int(slot)
            for batch in simulator._in_flight
            for buyer_slots, _ in batch
            for slot in buyer_slots
        }
        assert in_flight_slots, "expected purchases in flight"
        victim_slot = sorted(in_flight_slots)[0]
        victim_peer = simulator._peer_of[victim_slot]
        simulator._tracker.leave(victim_peer)
        simulator._evict(victim_peer)
        remaining = {
            int(slot)
            for batch in simulator._in_flight
            for buyer_slots, _ in batch
            for slot in buyer_slots
        }
        assert victim_slot not in remaining
        # The freed slot can be re-used by a joiner without inheriting the
        # departed peer's pending chunks.
        joiner = simulator._tracker.join()
        reused_slot = simulator._admit(joiner)
        assert reused_slot == victim_slot
        assert not simulator._have[reused_slot].any()
        simulator.advance_rounds(simulator.total_rounds() - 10)
        simulator.verify_conservation()

    def test_joiner_tunes_in_near_live_edge(self):
        simulator = StreamingMarketSimulator(small_config())
        simulator.advance_rounds(60)
        joiner = simulator._tracker.join()
        slot = simulator._admit(joiner)
        live_edge = simulator._emitted - 1
        assert simulator._pb_next[slot] == max(
            0, simulator._emitted - simulator.config.startup_chunks
        )
        assert simulator._pb_next[slot] <= live_edge + 1


class TestUploadSlotAccounting:
    """Audit of the windowed upload-slot accounting.

    The retired event-driven simulator derived the accounting epoch from
    the float clock (``floor(now / scheduling_interval)``), which drifts:
    accumulating 0.1-second intervals by repeated addition yields times
    like 5.999999999999998 whose quotient floors into the *previous*
    epoch, silently granting sellers a doubled capacity window.  The tick
    simulator keys the epoch on the integer tick counter.
    """

    def test_float_epoch_derivation_drifts_but_tick_epoch_does_not(self):
        interval = 0.1
        now = 0.0
        drifted = []
        for tick in range(1, 601):
            now += interval
            if int(np.floor(now / interval)) != tick:
                drifted.append(tick)
        assert drifted, "expected the naive float epoch derivation to drift"
        simulator = StreamingMarketSimulator(small_config(scheduling_interval=interval))
        for expected_tick in range(5):
            assert simulator._upload_epoch() == expected_tick == simulator._tick
            simulator.advance_rounds(1)

    def test_drift_prone_interval_never_over_admits(self):
        # 0.1-second rounds for 600 ticks: per-tick admissions must respect
        # the capacity even where the float clock would mis-bucket epochs.
        config = small_config(
            scheduling_interval=0.1,
            chunk_rate=10.0,
            horizon=60.0,
            upload_capacity=1,
            sample_interval=30.0,
        )
        simulator = StreamingMarketSimulator(config)
        worst = 0.0
        for _ in range(simulator.total_rounds()):
            before = simulator._uploads_total.copy()
            simulator.advance_rounds(1)
            worst = max(worst, float((simulator._uploads_total - before).max()))
        assert worst <= config.upload_capacity
        assert simulator.chunks_delivered > 0


class TestKernelParity:
    def test_loop_and_vectorized_deliver_identical_results(self):
        config = small_config()
        vectorized = StreamingMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="vectorized"))
        )
        loop = StreamingMarketSimulator.run_config(
            dataclasses.replace(config, options=KernelOptions(kernel="loop"))
        )
        assert vectorized.final_wealths.tobytes() == loop.final_wealths.tobytes()
        assert vectorized.chunks_delivered == loop.chunks_delivered
