"""Tests for open Jackson networks, M/M/1 building blocks and MVA."""

import numpy as np
import pytest

from repro.queueing import MM1KQueue, MM1Queue, OpenJacksonNetwork
from repro.queueing.mva import mva_full, mva_mean_queue_lengths, mva_throughputs


class TestMM1:
    def test_standard_formulas(self):
        queue = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        assert queue.utilization == pytest.approx(0.5)
        assert queue.mean_queue_length == pytest.approx(1.0)
        assert queue.mean_waiting_time == pytest.approx(1.0)
        assert queue.idle_probability == pytest.approx(0.5)

    def test_pmf_is_geometric(self):
        queue = MM1Queue(arrival_rate=1.0, service_rate=2.0)
        pmf = queue.queue_length_pmf(10)
        np.testing.assert_allclose(pmf[:3], [0.5, 0.25, 0.125])

    def test_tail_probability(self):
        queue = MM1Queue(arrival_rate=1.0, service_rate=4.0)
        assert queue.tail_probability(2) == pytest.approx(0.0625)
        assert queue.tail_probability(0) == 1.0

    def test_unstable_queue_raises(self):
        queue = MM1Queue(arrival_rate=3.0, service_rate=2.0)
        assert not queue.is_stable
        with pytest.raises(ValueError):
            _ = queue.mean_queue_length

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            MM1Queue(arrival_rate=0.0, service_rate=1.0)


class TestMM1K:
    def test_blocking_probability_matches_closed_form(self):
        queue = MM1KQueue(arrival_rate=1.0, service_rate=1.0, capacity=3)
        # rho=1: uniform over 0..3, blocking = 1/4.
        assert queue.blocking_probability == pytest.approx(0.25)
        assert queue.mean_queue_length == pytest.approx(1.5)

    def test_effective_throughput(self):
        queue = MM1KQueue(arrival_rate=2.0, service_rate=1.0, capacity=2)
        pmf = queue.queue_length_pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert queue.effective_throughput == pytest.approx(2.0 * (1 - pmf[-1]))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MM1KQueue(arrival_rate=1.0, service_rate=1.0, capacity=0)


class TestOpenJacksonNetwork:
    def test_single_queue_reduces_to_mm1(self):
        network = OpenJacksonNetwork([[0.0]], external_arrivals=[1.0], service_rates=[2.0])
        reference = MM1Queue(1.0, 2.0)
        result = network.queue_result(0)
        assert result.utilization == pytest.approx(reference.utilization)
        assert result.mean_queue_length == pytest.approx(reference.mean_queue_length)
        assert result.idle_probability == pytest.approx(reference.idle_probability)

    def test_tandem_queues(self):
        # Two queues in series: all traffic enters queue 0 then visits queue 1.
        network = OpenJacksonNetwork(
            [[0.0, 1.0], [0.0, 0.0]], external_arrivals=[1.0, 0.0], service_rates=[2.0, 4.0]
        )
        np.testing.assert_allclose(network.arrival_rates, [1.0, 1.0])
        np.testing.assert_allclose(network.utilizations, [0.5, 0.25])
        assert network.is_stable()

    def test_feedback_queue(self):
        # A single queue with feedback probability p returns: lambda = alpha / (1 - p).
        network = OpenJacksonNetwork([[0.25]], external_arrivals=[1.0], service_rates=[4.0])
        np.testing.assert_allclose(network.arrival_rates, [1.0 / 0.75])

    def test_instability_detected(self):
        network = OpenJacksonNetwork(
            [[0.0, 0.5], [0.0, 0.0]], external_arrivals=[2.0, 0.0], service_rates=[1.0, 5.0]
        )
        assert not network.is_stable()
        assert list(network.unstable_queues()) == [0]
        assert network.mean_queue_lengths()[0] == np.inf
        with pytest.raises(ValueError):
            network.marginal_pmf(0, 10)

    def test_marginal_pmf_geometric(self):
        network = OpenJacksonNetwork([[0.0]], external_arrivals=[1.0], service_rates=[2.0])
        pmf = network.marginal_pmf(0, 5)
        np.testing.assert_allclose(pmf[:2], [0.5, 0.25])

    def test_expected_total_wealth_and_throughput(self):
        network = OpenJacksonNetwork(
            [[0.0, 1.0], [0.0, 0.0]], external_arrivals=[1.0, 0.0], service_rates=[2.0, 4.0]
        )
        assert network.total_throughput() == pytest.approx(1.0)
        assert network.expected_total_wealth() == pytest.approx(1.0 + 1.0 / 3.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            OpenJacksonNetwork([[0.0, 1.2], [0.0, 0.0]], [1.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            OpenJacksonNetwork([[0.0]], [1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            OpenJacksonNetwork([[0.0]], [-1.0], [1.0])
        with pytest.raises(ValueError):
            OpenJacksonNetwork([[1.0]], [1.0], [1.0])  # no exit -> singular


class TestMVA:
    def test_single_queue_small_population(self):
        lengths, throughput = mva_full([1.0], [1.0], 1)
        assert lengths[0] == pytest.approx(1.0)
        assert throughput == pytest.approx(1.0)

    def test_two_symmetric_queues(self):
        lengths = mva_mean_queue_lengths([1.0, 1.0], [1.0, 1.0], 4)
        np.testing.assert_allclose(lengths, [2.0, 2.0])

    def test_lengths_sum_to_population(self):
        rng = np.random.default_rng(5)
        lengths = mva_mean_queue_lengths(rng.random(6) + 0.1, rng.random(6) + 0.5, 15)
        assert lengths.sum() == pytest.approx(15.0)

    def test_throughputs_proportional_to_visit_ratios(self):
        visit_ratios = [1.0, 2.0, 0.5]
        throughputs = mva_throughputs(visit_ratios, [1.0, 1.0, 1.0], 10)
        np.testing.assert_allclose(throughputs / throughputs[0], [1.0, 2.0, 0.5])

    def test_zero_population(self):
        lengths, throughput = mva_full([1.0, 1.0], [1.0, 1.0], 0)
        np.testing.assert_allclose(lengths, 0.0)
        assert throughput == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mva_full([], [], 3)
        with pytest.raises(ValueError):
            mva_full([1.0], [1.0, 2.0], 3)
        with pytest.raises(ValueError):
            mva_full([1.0], [0.0], 3)
        with pytest.raises(ValueError):
            mva_full([1.0], [1.0], -1)
