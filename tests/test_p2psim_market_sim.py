"""Tests for the transaction-level credit-market simulator."""

import numpy as np
import pytest

from repro.core.spending import DynamicSpendingPolicy
from repro.core.taxation import ProportionalRedistributionTax, ThresholdIncomeTax
from repro.overlay import ChurnConfig
from repro.p2psim import CreditMarketSimulator, MarketSimConfig, UtilizationMode


def small_config(**overrides):
    defaults = dict(
        num_peers=50,
        initial_credits=20.0,
        horizon=300.0,
        step=2.0,
        topology_mean_degree=8.0,
        sample_interval=50.0,
        seed=3,
    )
    defaults.update(overrides)
    return MarketSimConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MarketSimConfig(num_peers=1)
        with pytest.raises(ValueError):
            MarketSimConfig(initial_credits=-1.0)
        with pytest.raises(ValueError):
            MarketSimConfig(step=0.0)
        with pytest.raises(ValueError):
            MarketSimConfig(num_peers=10, topology_mean_degree=20.0)
        with pytest.raises(ValueError):
            MarketSimConfig(spending_rate_noise=-0.5)


class TestConservation:
    def test_closed_market_conserves_credits(self):
        config = small_config()
        result = CreditMarketSimulator.run_config(config)
        total = result.final_wealths.sum() + result.extras["tax_pool"]
        assert total == pytest.approx(50 * 20.0, rel=1e-9)

    def test_conservation_with_taxation(self):
        config = small_config(
            initial_credits=30.0, tax_policy=ThresholdIncomeTax(rate=0.2, threshold=20.0)
        )
        result = CreditMarketSimulator.run_config(config)
        total = result.final_wealths.sum() + result.extras["tax_pool"]
        assert total == pytest.approx(50 * 30.0, rel=1e-9)

    def test_wealth_never_negative(self):
        result = CreditMarketSimulator.run_config(small_config())
        assert np.all(result.final_wealths >= -1e-9)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = CreditMarketSimulator.run_config(small_config(seed=11))
        b = CreditMarketSimulator.run_config(small_config(seed=11))
        np.testing.assert_array_equal(a.final_wealths, b.final_wealths)
        assert a.total_transfers == b.total_transfers

    def test_different_seed_differs(self):
        a = CreditMarketSimulator.run_config(small_config(seed=11))
        b = CreditMarketSimulator.run_config(small_config(seed=12))
        assert not np.array_equal(a.final_wealths, b.final_wealths)


class TestDynamics:
    def test_transfers_happen_and_are_counted(self):
        result = CreditMarketSimulator.run_config(small_config())
        assert result.total_transfers > 1000
        assert np.all(result.spending_rates >= 0)
        assert result.spending_rates.mean() > 0.3

    def test_gini_starts_at_zero_and_grows(self):
        result = CreditMarketSimulator.run_config(small_config())
        gini = result.recorder.gini_series
        assert gini.y[0] == pytest.approx(0.0, abs=1e-9)
        assert gini.y[-1] > 0.1

    def test_asymmetric_more_skewed_than_symmetric(self):
        symmetric = CreditMarketSimulator.run_config(
            small_config(utilization=UtilizationMode.SYMMETRIC, horizon=500.0)
        )
        asymmetric = CreditMarketSimulator.run_config(
            small_config(utilization=UtilizationMode.ASYMMETRIC, horizon=500.0)
        )
        assert asymmetric.stabilized_gini > symmetric.stabilized_gini

    def test_dynamic_spending_reduces_skew(self):
        fixed = CreditMarketSimulator.run_config(
            small_config(utilization=UtilizationMode.ASYMMETRIC, horizon=500.0)
        )
        dynamic = CreditMarketSimulator.run_config(
            small_config(
                utilization=UtilizationMode.ASYMMETRIC,
                horizon=500.0,
                spending_policy=DynamicSpendingPolicy(wealth_threshold=20.0),
            )
        )
        assert dynamic.stabilized_gini < fixed.stabilized_gini

    def test_taxation_reduces_skew(self):
        untaxed = CreditMarketSimulator.run_config(
            small_config(utilization=UtilizationMode.ASYMMETRIC, horizon=500.0)
        )
        taxed = CreditMarketSimulator.run_config(
            small_config(
                utilization=UtilizationMode.ASYMMETRIC,
                horizon=500.0,
                tax_policy=ThresholdIncomeTax(rate=0.2, threshold=15.0),
            )
        )
        assert taxed.stabilized_gini < untaxed.stabilized_gini

    def test_generic_tax_policy_path(self):
        result = CreditMarketSimulator.run_config(
            small_config(
                horizon=100.0,
                tax_policy=ProportionalRedistributionTax(rate=0.3, threshold=15.0),
            )
        )
        assert result.final_wealths.sum() + result.extras["tax_pool"] == pytest.approx(
            1000.0, rel=1e-6
        )

    def test_spending_rate_noise_creates_heterogeneity(self):
        noisy = CreditMarketSimulator(
            small_config(utilization=UtilizationMode.SYMMETRIC, spending_rate_noise=0.3)
        )
        rates = noisy._base_mu[noisy._alive]
        assert rates.std() / rates.mean() > 0.1


class TestSnapshots:
    def test_snapshot_times_recorded(self):
        simulator = CreditMarketSimulator(small_config(), snapshot_times=[100.0, 200.0])
        result = simulator.run()
        assert set(result.recorder.snapshots) == {100.0, 200.0}
        assert all(len(profile) == 50 for profile in result.recorder.snapshots.values())


class TestChurn:
    def test_churn_generates_joins_and_leaves(self):
        config = small_config(
            horizon=400.0,
            churn=ChurnConfig(arrival_rate=0.25, mean_lifespan=200.0),
        )
        result = CreditMarketSimulator.run_config(config)
        assert result.joins > 0
        assert result.leaves > 0
        assert result.extras["final_population"] == len(result.final_wealths)

    def test_population_stays_near_littles_law(self):
        config = small_config(
            num_peers=50,
            horizon=600.0,
            churn=ChurnConfig.for_population(50, mean_lifespan=150.0),
        )
        result = CreditMarketSimulator.run_config(config)
        population = result.recorder.population_series.y
        assert 15 <= population[-1] <= 120

    def test_churn_credits_not_conserved_but_tracked(self):
        # Departing peers take credits away; joining peers bring fresh ones,
        # so the closed-market conservation no longer holds exactly — but
        # wealth stays non-negative and the recorder keeps sampling.
        config = small_config(
            horizon=300.0, churn=ChurnConfig(arrival_rate=0.5, mean_lifespan=100.0)
        )
        result = CreditMarketSimulator.run_config(config)
        assert np.all(result.final_wealths >= -1e-9)
        assert len(result.recorder.population_series) > 2
