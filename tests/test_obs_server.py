"""Tests for the ``repro serve`` sweep daemon (``repro.obs.server``).

The end-to-end test pins the daemon's headline contract: a sweep
submitted over HTTP runs through the same executor + artifact cache as
``repro sweep`` and therefore produces **byte-identical** cache
artifacts — same keys, same bytes — while its per-round telemetry
streams from the ``/runs/<id>/metrics`` endpoint.
"""

import http.client
import json
import threading
import time

import pytest

from repro.cli import main
from repro.obs.server import ReproServer, SweepJob, spec_from_request

SWEEP_REQUEST = {
    "target": "fig7",
    "params": {"average_wealth": [8]},
    "scale": "smoke",
    "seed": 3,
}


def _request(server, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _poll_until_done(server, job_id, deadline=120.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, job = _request(server, "GET", f"/runs/{job_id}")
        assert status == 200
        if job["status"] == "failed":
            raise AssertionError(f"daemon job failed: {job.get('error')}")
        if job["status"] == "done":
            return job
        time.sleep(0.05)
    raise AssertionError(f"daemon job {job_id} did not finish within {deadline}s")


def _cache_files(root):
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(port=0, cache_dir=str(tmp_path / "daemon-cache"))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


class TestSpecFromRequest:
    def test_scalar_params_are_wrapped(self):
        spec = spec_from_request({"target": "fig7", "params": {"average_wealth": 8}})
        assert spec.grid.axes["average_wealth"] == [8]

    def test_missing_target_rejected(self):
        with pytest.raises(ValueError):
            spec_from_request({"params": {"average_wealth": [8]}})


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _request(server, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "runs": 0}

    def test_unknown_path_404(self, server):
        status, payload = _request(server, "GET", "/nope")
        assert status == 404
        assert "unknown path" in payload["error"]

    def test_unknown_run_404(self, server):
        status, payload = _request(server, "GET", "/runs/run-9999")
        assert status == 404
        assert "run-9999" in payload["error"]

    def test_invalid_target_400(self, server):
        status, payload = _request(server, "POST", "/runs", {"target": "fig99"})
        assert status == 400
        assert "fig99" in payload["error"]

    def test_malformed_body_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request("POST", "/runs", body=b"not json")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_result_409_while_not_finished(self, server):
        # Register a job that never ran: /runs/<id>/result must 409 until
        # the worker thread stores payloads.
        job = SweepJob("run-test", spec=None, jobs=1, intra_jobs=1, cache_dir=None)
        server.service._jobs[job.id] = job
        server.service._order.append(job.id)
        status, payload = _request(server, "GET", "/runs/run-test/result")
        assert status == 409
        assert "no result yet" in payload["error"]

    def test_bench_view_reads_bench_root(self, server, tmp_path):
        bench_root = tmp_path / "bench"
        bench_root.mkdir()
        (bench_root / "BENCH_fake.json").write_text(
            json.dumps(
                {
                    "profile": "smoke",
                    "populations": [
                        {"num_peers": 10, "loop_steps_per_second": 1.0, "speedup": 2.0}
                    ],
                }
            )
        )
        server.bench_root = bench_root
        status, payload = _request(server, "GET", "/bench")
        assert status == 200
        assert payload["files"] == ["BENCH_fake.json"]
        assert payload["kernels"]["BENCH_fake.json"]["rows"] == [
            {"num_peers": 10, "loop_steps_per_second": 1.0, "speedup": 2.0}
        ]


class TestEndToEnd:
    def test_daemon_sweep_matches_cli_sweep_byte_for_byte(self, server, tmp_path):
        status, created = _request(server, "POST", "/runs", SWEEP_REQUEST)
        assert status == 201
        assert created["status"] in ("pending", "running", "done")
        job_id = created["id"]

        job = _poll_until_done(server, job_id)
        assert job["summary"]["executed"] == 1
        assert job["summary"]["cached"] == 0
        assert "1 shard executed" in job["summary"]["summary_line"]

        # Live telemetry streamed from the in-process shard.
        status, metrics = _request(server, "GET", f"/runs/{job_id}/metrics")
        assert status == 200
        assert metrics["counters"]["runner.shard.executed"] == 1
        assert len(metrics["series"]["market.gini"]["x"]) > 0
        assert metrics["gauges"]["market.steps_per_second"] > 0.0

        status, result = _request(server, "GET", f"/runs/{job_id}/result")
        assert status == 200
        assert len(result["shards"]) == 1

        status, listing = _request(server, "GET", "/runs")
        assert status == 200
        assert [entry["id"] for entry in listing["runs"]] == [job_id]

        # The same sweep through the CLI fills a second cache with the
        # exact same files: identical keys, identical bytes.
        cli_cache = tmp_path / "cli-cache"
        assert main(
            [
                "sweep", "fig7",
                "--param", "average_wealth=8",
                "--scale", "smoke", "--seed", "3",
                "--cache-dir", str(cli_cache),
            ]
        ) == 0
        daemon_files = _cache_files(tmp_path / "daemon-cache")
        cli_files = _cache_files(cli_cache)
        assert daemon_files
        assert daemon_files == cli_files

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        instance = ReproServer(port=0, cache_dir=str(tmp_path / "cache"))
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            status, payload = _request(instance, "POST", "/shutdown")
            assert status == 200
            assert payload == {"status": "shutting down"}
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=5)
