"""Fixture-pair tests for every rule shipped by ``repro.analysis``.

Each rule gets at least one violating snippet proving it fires and one
clean counterpart proving it stays quiet — the analyzer's own
bit-identity contract, in miniature.
"""

import ast
import textwrap

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    AllowedContext,
    AnalysisConfig,
    all_rules,
    analyze_file,
    select_rules,
)
from repro.analysis.core import FileContext

#: A path whose segments put fixtures in scope for every simulation rule.
SIM_PATH = "src/repro/p2psim/fixture.py"
#: A path outside every contract scope (telemetry is exempt by design).
OBS_PATH = "src/repro/obs/fixture.py"


def run_rules(source, path=SIM_PATH, config=DEFAULT_CONFIG):
    source = textwrap.dedent(source)
    ctx = FileContext(path, source, ast.parse(source))
    findings = []
    for rule in all_rules():
        if config.in_scope(rule.id, ctx):
            findings.extend(rule.check(ctx, config))
    return findings


def fired(source, **kwargs):
    return sorted({finding.rule for finding in run_rules(source, **kwargs)})


class TestDET001GlobalRng:
    def test_np_random_sampling_fires(self):
        findings = run_rules(
            """
            import numpy as np

            def spend(n):
                return np.random.poisson(1.0, size=n)
            """
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert "numpy.random.poisson" in findings[0].message

    def test_module_alias_and_member_import_fire(self):
        assert fired(
            """
            import numpy.random as npr

            def f():
                return npr.rand(3)
            """
        ) == ["DET001"]
        assert fired(
            """
            from numpy.random import rand

            def f():
                return rand(3)
            """
        ) == ["DET001"]

    def test_stdlib_random_fires(self):
        assert fired(
            """
            import random

            def churn(peers):
                random.shuffle(peers)
            """
        ) == ["DET001"]
        assert fired(
            """
            from random import choice

            def pick(peers):
                return choice(peers)
            """
        ) == ["DET001"]

    def test_system_random_fires(self):
        assert fired(
            """
            import random

            def entropy():
                return random.SystemRandom()
            """
        ) == ["DET001"]

    def test_injected_generator_is_clean(self):
        assert fired(
            """
            import numpy as np

            def spend(rng: np.random.Generator, n):
                return rng.poisson(1.0, size=n)

            def make(seed):
                return np.random.default_rng(seed)
            """
        ) == []

    def test_seeded_stdlib_instance_is_clean(self):
        assert fired(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """
        ) == []

    def test_obs_package_is_out_of_scope(self):
        assert fired(
            """
            import numpy as np

            def jitter():
                return np.random.poisson(1.0)
            """,
            path=OBS_PATH,
        ) == []

    def test_benchmarks_are_in_scope(self):
        assert fired(
            """
            import numpy as np

            def load():
                return np.random.poisson(1.0)
            """,
            path="benchmarks/bench_fixture.py",
        ) == ["DET001"]


class TestDET002UnorderedIteration:
    def test_set_call_iteration_fires(self):
        findings = run_rules(
            """
            def route(peers):
                for peer in set(peers):
                    yield peer
            """
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_set_literal_and_comprehension_fire(self):
        assert fired(
            """
            def f():
                return [x for x in {1, 2, 3}]
            """
        ) == ["DET002"]
        assert fired(
            """
            def f(a, b):
                for x in a.union(b):
                    yield x
            """
        ) == ["DET002"]

    def test_set_typed_local_fires(self):
        assert fired(
            """
            def f(xs):
                alive = set(xs)
                for x in alive:
                    yield x
            """
        ) == ["DET002"]

    def test_list_wrapper_does_not_hide_the_set(self):
        assert fired(
            """
            def f(xs):
                for x in list(set(xs)):
                    yield x
            """
        ) == ["DET002"]

    def test_filesystem_listings_fire(self):
        assert fired(
            """
            import os

            def scan(root):
                for name in os.listdir(root):
                    yield name
            """
        ) == ["DET002"]
        assert fired(
            """
            def scan(root):
                for entry in root.iterdir():
                    yield entry
            """
        ) == ["DET002"]

    def test_sorted_iteration_is_clean(self):
        assert fired(
            """
            def route(peers, root):
                for peer in sorted(set(peers)):
                    yield peer
                for entry in sorted(root.iterdir()):
                    yield entry
            """
        ) == []

    def test_sorted_reassignment_sanitizes_the_name(self):
        # `x = sorted(x)` is exactly the fix the rule asks for — the name
        # is an ordered list from then on, not a set.
        assert fired(
            """
            def f(xs):
                alive = set(xs)
                alive = sorted(alive)
                for x in alive:
                    yield x
            """
        ) == []

    def test_list_sorted_reassignment_sanitizes_the_name(self):
        assert fired(
            """
            def f(xs):
                alive = set(xs)
                alive = list(sorted(alive))
                for x in alive:
                    yield x
            """
        ) == []

    def test_unsanitized_reassignment_still_fires(self):
        # Rebinding to `list(...)` (no sorted) preserves the unordered
        # traversal, so the name stays flagged.
        assert fired(
            """
            def f(xs):
                alive = set(xs)
                alive = list(alive)
                for x in alive:
                    yield x
            """
        ) == ["DET002"]

    def test_resanitized_name_can_become_a_set_again(self):
        assert fired(
            """
            def f(xs, ys):
                alive = sorted(xs)
                alive = set(ys)
                for x in alive:
                    yield x
            """
        ) == ["DET002"]

    def test_dict_views_are_deliberately_allowed(self):
        # CPython dicts iterate in insertion order; flagging them would be
        # pure noise (see config.py for the scoping rationale).
        assert fired(
            """
            def f(d):
                for key, value in d.items():
                    yield key, value
            """
        ) == []

    def test_allowed_context_exempts_bookkeeping(self):
        config = AnalysisConfig(
            rule_scopes=DEFAULT_CONFIG.rule_scopes,
            allowed_contexts={
                "DET002": (
                    AllowedContext(
                        path="repro/p2psim/fixture.py",
                        qualname="Store.count",
                        reason="order-insensitive reduction",
                    ),
                )
            },
        )
        source = """
        class Store:
            def count(self, root):
                return sum(1 for _ in root.glob("*.pkl"))
        """
        assert fired(source, config=config) == []
        assert fired(source) == ["DET002"]


class TestDET003WallClock:
    def test_time_time_fires_in_result_path(self):
        findings = run_rules(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/runner/fixture.py",
        )
        assert [f.rule for f in findings] == ["DET003"]

    def test_datetime_now_fires(self):
        assert fired(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        ) == ["DET003"]
        assert fired(
            """
            import datetime

            def stamp():
                return datetime.datetime.utcnow()
            """
        ) == ["DET003"]

    def test_monotonic_spans_are_clean(self):
        assert fired(
            """
            import time

            def measure():
                started = time.perf_counter()
                return time.perf_counter() - started
            """
        ) == []

    def test_obs_is_out_of_scope(self):
        assert fired(
            """
            import time

            def stamp():
                return time.time()
            """,
            path=OBS_PATH,
        ) == []

    def test_default_config_allows_checkpoint_gc(self):
        # The one legitimate wall-clock read in a result-path package:
        # the checkpoint GC cutoff, exempted as an allowed context (with
        # its reason) rather than a suppression.
        context = DEFAULT_CONFIG.allowed_contexts["DET003"][0]
        assert context.qualname == "CheckpointStore.prune_stale"
        assert context.reason


class TestPICKLE001UnpicklableState:
    def test_lambda_and_lock_fire(self):
        findings = run_rules(
            """
            import threading

            class Simulator:
                def __init__(self):
                    self.score = lambda w: w * 2
                    self.lock = threading.Lock()
            """
        )
        assert [f.rule for f in findings] == ["PICKLE001", "PICKLE001"]

    def test_open_handle_generator_and_closure_fire(self):
        assert fired(
            """
            class Simulator:
                def __init__(self, path, xs):
                    self.log = open(path)
                    self.stream = (x for x in xs)
            """
        ) == ["PICKLE001"]
        assert fired(
            """
            class Simulator:
                def __init__(self):
                    def helper():
                        return 1
                    self.helper = helper
            """
        ) == ["PICKLE001"]

    def test_plain_state_is_clean(self):
        assert fired(
            """
            class Simulator:
                def __init__(self, config):
                    self.config = config
                    self.balance = [0.0] * 10
                    self.score = _module_level_score
            """
        ) == []

    def test_local_lambda_is_clean(self):
        assert fired(
            """
            class Simulator:
                def rank(self, xs):
                    key = lambda x: -x
                    return sorted(xs, key=key)
            """
        ) == []

    def test_non_checkpoint_package_is_out_of_scope(self):
        assert fired(
            """
            class Sink:
                def __init__(self, path):
                    self.handle = open(path, "w")
            """,
            path=OBS_PATH,
        ) == []


class TestOBS001UnguardedEmitter:
    def test_unguarded_loop_emit_fires(self):
        findings = run_rules(
            """
            def run(emitter, rounds):
                for i in range(rounds):
                    emitter.point("gini", i, 0.5)
            """
        )
        assert [f.rule for f in findings] == ["OBS001"]

    def test_unguarded_span_and_get_emitter_fire(self):
        assert fired(
            """
            def run(emitter, rounds):
                while rounds:
                    with emitter.span("tick"):
                        rounds -= 1
            """
        ) == ["OBS001"]
        assert fired(
            """
            from repro.obs import get_emitter

            def run(rounds):
                for _ in range(rounds):
                    get_emitter().counter("tick")
            """
        ) == ["OBS001"]

    def test_branch_on_local_bool_is_clean(self):
        assert fired(
            """
            def run(emitter, rounds):
                observing = emitter.enabled
                for i in range(rounds):
                    if observing:
                        emitter.point("gini", i, 0.5)
            """
        ) == []

    def test_enabled_attribute_guard_is_clean(self):
        assert fired(
            """
            def run(emitter, samples):
                for i, value in enumerate(samples):
                    if emitter.enabled and value > 0:
                        emitter.point("gini", i, value)
            """
        ) == []

    def test_emit_outside_loop_is_clean(self):
        assert fired(
            """
            def run(emitter, rounds):
                for _ in range(rounds):
                    pass
                emitter.gauge("steps_per_second", rounds)
            """
        ) == []

    def test_else_branch_of_guard_still_fires(self):
        # An emitter call on the disabled branch defeats the guard.
        assert fired(
            """
            def run(emitter, rounds):
                observing = emitter.enabled
                for i in range(rounds):
                    if observing:
                        pass
                    else:
                        emitter.point("gini", i, 0.5)
            """
        ) == ["OBS001"]


class TestKERNEL001KernelPairs:
    def test_undispatched_variant_fires(self):
        findings = run_rules(
            """
            class Simulator:
                def _route_loop(self):
                    return 1

                def _route_vectorized(self):
                    return 1

                def step(self):
                    if self.config.kernel == "loop":
                        return self._route_loop()
                    return self._route_loop()
            """
        )
        assert [f.rule for f in findings] == ["KERNEL001"]
        assert "_route_vectorized" in findings[0].message

    def test_missing_config_switch_fires(self):
        findings = run_rules(
            """
            class Simulator:
                def _route_loop(self):
                    return 1

                def _route_vectorized(self):
                    return 1

                def step(self):
                    routed = self._route_loop()
                    return routed + self._route_vectorized()
            """
        )
        assert [f.rule for f in findings] == ["KERNEL001"]
        assert "config switch" in findings[0].message

    def test_dispatched_pair_is_clean(self):
        assert fired(
            """
            class Simulator:
                def _route_loop(self):
                    return 1

                def _route_vectorized(self):
                    return 1

                def step(self):
                    if self.config.kernel == "loop":
                        return self._route_loop()
                    return self._route_vectorized()
            """
        ) == []

    def test_unpaired_helper_is_clean(self):
        assert fired(
            """
            class Simulator:
                def _drain_loop(self):
                    return 1
            """
        ) == []


def _analyze_fixture(tmp_path, source, name="fixture.py"):
    target = tmp_path / "src" / "repro" / "p2psim" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze_file(target)


class TestNOQA001SuppressionHygiene:
    def test_bare_noqa_fires_and_does_not_suppress(self, tmp_path):
        findings = _analyze_fixture(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro: noqa
            """,
        )
        assert sorted(f.rule for f in findings) == ["DET003", "NOQA001"]
        det003 = [f for f in findings if f.rule == "DET003"]
        assert det003[0].status == "active"

    def test_missing_reason_fires(self, tmp_path):
        findings = _analyze_fixture(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro: noqa DET003
            """,
        )
        assert sorted(f.rule for f in findings) == ["DET003", "NOQA001"]

    def test_wellformed_suppression_is_clean_and_suppresses(self, tmp_path):
        findings = _analyze_fixture(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro: noqa DET003 -- feeds a log line only
            """,
        )
        assert [f.rule for f in findings] == ["DET003"]
        assert findings[0].status == "suppressed"
        assert findings[0].justification == "feeds a log line only"

    def test_syntax_mention_in_docstring_is_not_a_suppression(self, tmp_path):
        findings = _analyze_fixture(
            tmp_path,
            '''
            """Docs may show `# repro: noqa DET001 -- reason` verbatim."""
            ''',
        )
        assert findings == []


class TestNOQA002StaleSuppressions:
    def test_unused_suppression_fires(self, tmp_path):
        findings = _analyze_fixture(
            tmp_path,
            """
            def stamp():
                return 42  # repro: noqa DET003 -- nothing to suppress here
            """,
        )
        assert [f.rule for f in findings] == ["NOQA002"]

    def test_used_suppression_is_clean(self, tmp_path):
        findings = _analyze_fixture(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro: noqa DET003 -- bookkeeping only
            """,
        )
        assert [f.rule for f in findings if f.rule == "NOQA002"] == []


class TestPARSE001:
    def test_syntax_error_fires(self, tmp_path):
        findings = _analyze_fixture(tmp_path, "def broken(:\n    pass\n")
        assert [f.rule for f in findings] == ["PARSE001"]

    def test_valid_file_is_clean(self, tmp_path):
        assert _analyze_fixture(tmp_path, "x = 1\n") == []


class TestRegistry:
    def test_every_rule_registered_once(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "DET001",
            "DET002",
            "DET003",
            "PICKLE001",
            "OBS001",
            "KERNEL001",
            "SEED001",
            "SEED002",
            "THREAD001",
            "THREAD002",
            "SHARD001",
            "SWEEP001",
            "SWEEP002",
            "NOQA001",
            "NOQA002",
            "PARSE001",
        }

    def test_every_rule_has_summary_and_severity(self):
        for rule in all_rules():
            assert rule.summary, rule.id
            assert rule.severity.value in ("error", "warning")

    def test_select_rules_rejects_unknown(self):
        with pytest.raises(KeyError):
            select_rules(["DET999"])
        assert [rule.id for rule in select_rules(["DET001", "OBS001"])] == [
            "DET001",
            "OBS001",
        ]


class TestSHARD001ShardTaskPurity:
    def test_self_write_in_closure_task_fires(self):
        findings = run_rules(
            """
            import functools
            from repro.runner.shard import run_shard_tasks

            class Sim:
                def round(self, shard_rows):
                    def task(rows):
                        self.income += rows.sum()
                        return rows

                    run_shard_tasks(
                        [functools.partial(task, rows) for rows in shard_rows]
                    )
            """
        )
        assert [f.rule for f in findings] == ["SHARD001"]
        assert "simulator state" in findings[0].message

    def test_free_name_mutation_fires(self):
        findings = run_rules(
            """
            from repro.runner.shard import run_shard_tasks

            def round(shard_rows):
                merged = []
                tasks = [lambda rows=rows: merged.append(rows.sum()) for rows in shard_rows]
                run_shard_tasks(tasks)
            """
        )
        assert [f.rule for f in findings] == ["SHARD001"]
        assert "`merged`" in findings[0].message

    def test_global_declaration_fires(self):
        findings = run_rules(
            """
            from repro.runner.shard import run_shard_tasks

            def counter_task():
                global TOTAL
                TOTAL += 1

            def round():
                run_shard_tasks([counter_task])
            """
        )
        assert [f.rule for f in findings] == ["SHARD001"]
        assert "global TOTAL" in findings[0].message

    def test_subscript_store_on_free_name_fires(self):
        assert fired(
            """
            from repro.runner import run_shard_tasks

            def round(shard_rows, income):
                run_shard_tasks([lambda rows=rows: income.__iadd__(0) or None
                                 for rows in shard_rows])
                tasks = []
                for rows in shard_rows:
                    tasks.append(lambda rows=rows: None)
                bad = [lambda rows=rows: income.update({0: 1}) for rows in shard_rows]
                run_shard_tasks(bad)
            """
        ) == ["SHARD001"]

    def test_pure_partial_tasks_stay_quiet(self):
        assert fired(
            """
            import functools
            from repro.runner.shard import run_shard_tasks

            def _route_rows(rows, data, draws):
                local = data[rows] + draws[rows]
                out = local.cumsum()
                return out

            class Sim:
                def round(self, shard_rows, data, draws):
                    tasks = [
                        functools.partial(_route_rows, rows, data, draws)
                        for rows in shard_rows
                    ]
                    pieces = run_shard_tasks(tasks, backend="thread")
                    total = 0.0
                    for piece in pieces:  # boundary exchange: caller merges
                        total += piece[-1]
                    return total
            """
        ) == []

    def test_local_mutation_inside_task_stays_quiet(self):
        assert fired(
            """
            from repro.runner.shard import run_shard_tasks

            def round(shard_rows):
                def task(rows):
                    acc = []
                    acc.append(rows)
                    buffer = {}
                    buffer["rows"] = rows
                    return buffer

                run_shard_tasks([lambda rows=rows: task(rows) for rows in shard_rows])
            """
        ) == []

    def test_unrelated_run_shard_tasks_name_stays_quiet(self):
        # A same-named helper from another package is not the executor.
        assert fired(
            """
            from othermod import run_shard_tasks

            def round(tasks, sink):
                run_shard_tasks([lambda: sink.append(1) for _ in range(2)])
            """
        ) == []

    def test_out_of_scope_path_stays_quiet(self):
        assert fired(
            """
            from repro.runner.shard import run_shard_tasks

            def round(sink):
                run_shard_tasks([lambda: sink.append(1)])
            """,
            path="src/repro/analysis/fixture.py",
        ) == []
