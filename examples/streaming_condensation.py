#!/usr/bin/env python3
"""Chunk-level streaming swarm: reproduce the paper's motivating contrast (Fig. 1).

Two credit-incentivized live-streaming swarms run the same UUSee-like
mesh-pull protocol on the same scale-free overlay; the only differences are
the initial wealth and the pricing scheme:

* case A — generous initial credits and heterogeneous per-seller prices
  (Poisson-distributed, mean ~1.5 credits): wealth condenses onto the peers
  with the most lucrative prices, most peers end up too poor to buy, and the
  distribution of credit *spending rates* (= download rates) becomes very
  skewed;
* case B — modest initial credits (c = 12) and uniform pricing at 1 credit
  per chunk: income tracks expenditure for everyone and spending rates stay
  balanced.

This is a scaled-down version of the paper's 500-peer, 20000-second
experiment (the shape of the contrast is preserved; see EXPERIMENTS.md).

Run it with:  python examples/streaming_condensation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import gini_index, wealth_summary
from repro.core.pricing import PerPeerFlatPricing, UniformPricing
from repro.p2psim import StreamingMarketSimulator, StreamingSimConfig
from repro.utils.rng import make_rng

SEED = 11
NUM_PEERS = 80
HORIZON = 900.0


def poisson_seller_prices(num_peers: int, seed: int) -> PerPeerFlatPricing:
    """Per-seller flat prices drawn from 1 + Poisson(0.5) (mean 1.5 credits)."""
    rng = make_rng(seed, "prices")
    return PerPeerFlatPricing({peer: 1.0 + float(rng.poisson(0.5)) for peer in range(num_peers)})


def run_case(label: str, initial_credits: float, pricing) -> None:
    config = StreamingSimConfig(
        num_peers=NUM_PEERS,
        initial_credits=initial_credits,
        horizon=HORIZON,
        pricing=pricing,
        upload_capacity=1,
        sample_interval=60.0,
        seed=SEED,
    )
    result = StreamingMarketSimulator.run_config(config)
    summary = wealth_summary(result.final_wealths)
    print(f"\n=== {label} ===")
    print(f"  initial credits per peer: {initial_credits:g}")
    print(f"  chunks delivered:         {result.chunks_delivered}")
    print(f"  mean playback continuity: {float(np.mean(result.continuity)):.3f}")
    print(f"  spending-rate Gini:       {gini_index(result.spending_rates):.3f}")
    print(f"  wealth Gini:              {summary['gini']:.3f}")
    print(f"  bankrupt fraction:        {summary['bankrupt_fraction']:.3f}")
    print(f"  top-10% wealth share:     {summary['top_10pct_share']:.3f}")
    sorted_rates = np.sort(result.spending_rates)
    deciles = np.percentile(sorted_rates, [10, 50, 90])
    print(f"  spending-rate deciles (10/50/90%): "
          f"{deciles[0]:.3f} / {deciles[1]:.3f} / {deciles[2]:.3f} credits/s")


def main() -> None:
    print("Credit-incentivized P2P live streaming: condensation vs healthy circulation")
    run_case(
        "case A — condensation (c=60, heterogeneous Poisson prices)",
        initial_credits=60.0,
        pricing=poisson_seller_prices(NUM_PEERS, SEED),
    )
    run_case(
        "case B — healthy market (c=12, uniform 1-credit pricing)",
        initial_credits=12.0,
        pricing=UniformPricing(1.0),
    )
    print("\nIn the paper's full-scale run (500 peers, 20000 s) the two cases "
          "yield spending-rate Gini indices of roughly 0.9 and 0.1.")


if __name__ == "__main__":
    main()
