#!/usr/bin/env python3
"""Quickstart: model a credit-based P2P market and check its sustainability.

This example walks through the core workflow of the library:

1. build a scale-free P2P overlay (the paper's Sec. VI topology);
2. wrap it in a :class:`repro.CreditMarket` with an initial credit endowment
   and a pricing scheme;
3. solve the traffic equations (Lemma 1) and inspect the normalized
   utilizations (Eq. 2);
4. diagnose wealth condensation (Theorems 2-3) and map the market onto a
   closed Jackson queueing network (Table I) for exact finite-network
   statistics;
5. cross-check the analytical prediction with a short transaction-level
   simulation.

Run it with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CreditMarket, UniformPricing, gini_index, scale_free_topology
from repro.p2psim import CreditMarketSimulator, MarketSimConfig, UtilizationMode

SEED = 42


def main() -> None:
    # 1. A 200-peer scale-free overlay (power-law degree, mean degree 20).
    topology = scale_free_topology(200, shape=2.5, mean_degree=20.0, seed=SEED)
    print(f"overlay: {topology.num_peers} peers, mean degree {topology.mean_degree():.1f}")

    # 2. A credit market: every peer starts with c = 50 credits, chunks cost 1 credit.
    market = CreditMarket(topology, initial_credits=50.0, pricing=UniformPricing(1.0))
    print(f"market: total credits M = {market.total_credits:.0f}, average wealth c = "
          f"{market.average_wealth:.0f}")

    # 3. Equilibrium of the credit circulation (Lemma 1).
    equilibrium = market.equilibrium()
    print(f"traffic equations solved, residual {equilibrium.traffic_residual:.2e}")
    print(f"utilization spread: min {equilibrium.utilizations.min():.3f}, "
          f"max {equilibrium.utilizations.max():.3f}")

    # 4. Condensation diagnosis (Theorems 2-3) and the Table I mapping.
    report = equilibrium.condensation
    print(f"condensation threshold T = {report.threshold:.2f}; average wealth c = "
          f"{report.average_wealth:.0f}; condensation predicted: {report.condenses}")
    network = market.to_queueing_network()
    print(f"closed Jackson network: N = {network.num_queues}, M = {network.total_jobs}")
    print(f"predicted Gini of expected wealth: {network.expected_wealth_gini():.3f}")
    print(f"predicted bankruptcy probability: {market.predicted_bankruptcy_fraction():.3f}")

    # 5. Simulate the credit circulation and compare.
    config = MarketSimConfig(
        num_peers=200,
        initial_credits=50.0,
        horizon=3000.0,
        step=2.0,
        utilization=UtilizationMode.ASYMMETRIC,
        sample_interval=100.0,
        seed=SEED,
    )
    result = CreditMarketSimulator.run_config(config, topology=topology)
    print("\nsimulation (asymmetric utilization, 3000 simulated seconds):")
    print(f"  credits transferred: {result.total_transfers}")
    print(f"  final wealth Gini:   {result.final_gini:.3f}")
    print(f"  bankrupt fraction:   {float(np.mean(result.final_wealths < 1.0)):.3f}")
    print(f"  mean spending rate:  {result.spending_rates.mean():.3f} credits/s")
    print(f"  sample of wealth distribution (sorted, every 20th peer):")
    print("   ", np.round(np.sort(result.final_wealths)[::20], 1))

    # The wealth Gini of the simulation should exceed the Gini of expected
    # wealths (it includes stochastic spread on top of the systematic skew).
    print(f"\nGini of simulated wealth ({gini_index(result.final_wealths):.3f}) vs "
          f"Gini of analytically expected wealth ({network.expected_wealth_gini():.3f})")


if __name__ == "__main__":
    main()
