#!/usr/bin/env python3
"""Peer churn and the sustainability of a credit-based P2P market (Fig. 11).

A dynamic overlay — Poisson arrivals, exponential lifetimes, joining peers
endowed with fresh credits, departing peers taking their credits away — is
an *open* Jackson network.  The paper observes (Sec. VI-E) that:

1. dynamic overlays are less prone to condensation than static ones of the
   same size (peers leave before they can accumulate extreme wealth);
2. the arrival rate has little effect on the skewness;
3. longer lifespans give rich peers more time to get richer.

This example sweeps lifespans at a fixed expected population and prints the
stabilized Gini index, and also shows the analytical open-network view for
a small example (stability condition ρ_i < 1).

Run it with:  python examples/churn_sustainability.py
"""

from __future__ import annotations

import numpy as np

from repro.overlay import ChurnConfig
from repro.p2psim import CreditMarketSimulator, MarketSimConfig, UtilizationMode
from repro.queueing import OpenJacksonNetwork, RoutingMatrix

SEED = 33
POPULATION = 150
AVERAGE_WEALTH = 50.0
HORIZON = 4000.0


def run_churn(label, churn):
    config = MarketSimConfig(
        num_peers=POPULATION,
        initial_credits=AVERAGE_WEALTH,
        horizon=HORIZON,
        step=2.5,
        utilization=UtilizationMode.ASYMMETRIC,
        churn=churn,
        sample_interval=100.0,
        seed=SEED,
    )
    result = CreditMarketSimulator.run_config(config)
    print(f"{label:<44s}  gini={result.stabilized_gini:6.3f}  "
          f"population={result.extras['final_population']:4d}  "
          f"joins={result.joins:5d}  leaves={result.leaves:5d}")
    return result


def analytical_open_network_demo() -> None:
    """A 3-peer open network: credits arrive with newcomers and leave with departures."""
    routing = RoutingMatrix([[0.0, 0.6, 0.3], [0.5, 0.0, 0.4], [0.45, 0.45, 0.0]])
    # 10% of each peer's spending leaves the network (the spender departs).
    open_routing = routing.matrix * 0.9
    network = OpenJacksonNetwork(
        open_routing,
        external_arrivals=[0.3, 0.3, 0.3],
        service_rates=[1.0, 1.2, 0.8],
    )
    print("\nAnalytical open-network example (3 peers):")
    print(f"  arrival rates  : {np.round(network.arrival_rates, 3)}")
    print(f"  utilizations   : {np.round(network.utilizations, 3)}")
    print(f"  stable         : {network.is_stable()}")
    print(f"  expected wealth: {np.round(network.mean_queue_lengths(), 2)}")


def main() -> None:
    print(f"Dynamic credit market, expected population {POPULATION}, c={AVERAGE_WEALTH:.0f}\n")
    run_churn("static overlay (no churn)", None)
    for lifespan in (500.0, 1000.0, 2000.0):
        churn = ChurnConfig(arrival_rate=POPULATION / lifespan, mean_lifespan=lifespan)
        run_churn(f"churn: lifespan={lifespan:.0f}s, size held at {POPULATION}", churn)
    # Fixed lifespan, varying arrival rate (population scales with it).
    for rate_factor in (0.5, 2.0):
        lifespan = 500.0
        rate = POPULATION / lifespan * rate_factor
        churn = ChurnConfig(arrival_rate=rate, mean_lifespan=lifespan)
        run_churn(f"churn: lifespan=500s, arrival rate x{rate_factor:g}", churn)

    analytical_open_network_demo()

    print("\nPaper observations (Sec. VI-E): churn lowers the Gini relative to a "
          "static overlay, arrival rate matters little, longer lifespans raise it.")


if __name__ == "__main__":
    main()
