#!/usr/bin/env python3
"""Counter-measures against credit condensation, replicated over many seeds.

The paper's Sec. VI-C studies income taxation as a way to keep a
credit-based P2P market sustainable once condensation pressure exists
(asymmetric utilization): peers above a wealth threshold pay a share of
their income, which the system redistributes one credit per peer.

This example drives the paper's (tax rate × threshold) sensitivity grid
through the ``repro.runner`` orchestration subsystem: every grid point is
replicated over independent seeds (derived with the library's
``derive_seed`` chain, so the run is fully reproducible), shards run on a
process pool with an on-disk artifact cache, and the stabilized Gini is
reported as mean ± bootstrap confidence interval across replications.

Run it with:  PYTHONPATH=src python examples/taxation_counter_measures.py

Re-running is nearly instant: the artifact cache under
``/tmp/repro-taxation-cache`` skips every already-computed shard.  Try
``python -m repro.cli sweep fig9-taxation-grid --reps 4 --jobs 4`` for
the CLI equivalent.
"""

from __future__ import annotations

from repro.runner import ArtifactCache, ParamGrid, SweepSpec, aggregate_sweep, run_sweep

REPLICATIONS = 4
BASE_SEED = 21
CACHE_DIR = "/tmp/repro-taxation-cache"


def main() -> None:
    configs = [{"tax_rate": 0.0}]
    configs += ParamGrid({"tax_rate": [0.1, 0.2], "tax_threshold": [50.0, 80.0]}).points()
    spec = SweepSpec(
        experiment_id="fig9",
        grid=configs,
        replications=REPLICATIONS,
        base_seed=BASE_SEED,
        scale="smoke",
        name="taxation counter-measures",
    )
    print(spec.describe())

    cache = ArtifactCache(CACHE_DIR)
    report = run_sweep(spec, jobs=0, cache=cache, progress=print)
    print(report.describe())

    aggregate = aggregate_sweep(report)
    gini = aggregate.filter(metric="stabilized_gini")
    print(f"\nStabilized Gini by taxation policy "
          f"({REPLICATIONS} replications, 95% bootstrap CI):\n")
    print(f"{'rate':>6s}  {'threshold':>9s}  {'gini':>7s}  {'95% CI':>18s}")
    for row in gini:
        threshold = row.get("tax_threshold")
        threshold_text = f"{threshold:g}" if threshold is not None else "-"
        interval = f"[{row['boot_low']:.3f}, {row['boot_high']:.3f}]"
        print(f"{row['tax_rate']:>6g}  {threshold_text:>9s}  "
              f"{row['mean']:>7.3f}  {interval:>18s}")

    no_tax = [row for row in gini if row["tax_rate"] == 0.0][0]
    taxed = [row for row in gini if row["tax_rate"] > 0.0]
    best = min(taxed, key=lambda row: row["mean"])
    print(f"\nNo taxation averages gini={no_tax['mean']:.3f}; the best policy "
          f"(rate={best['tax_rate']:g}, threshold={best['tax_threshold']:g}) "
          f"averages {best['mean']:.3f}.")
    print("The paper's observations (Sec. VI-C): taxation inhibits skewness, and "
          "a threshold near the average wealth works best.")


if __name__ == "__main__":
    main()
