#!/usr/bin/env python3
"""Counter-measures against credit condensation: taxation and dynamic spending.

The paper's Sec. VI-C/D studies two ways to keep a credit-based P2P market
sustainable once condensation pressure exists (asymmetric utilization):

* an income tax above a wealth threshold, redistributed one credit per peer
  whenever the system has collected N credits (Fig. 9);
* letting rich peers spend faster than their base rate — the dynamic
  spending-rate rule ``μ_i = μ_i^s · B_i / m`` above the threshold ``m``
  (Fig. 10).

This example runs a condensation-prone market under several policies and
prints the stabilized Gini index and bankruptcy fraction for each, showing
how much each counter-measure helps.

Run it with:  python examples/taxation_counter_measures.py
"""

from __future__ import annotations

import numpy as np

from repro.core.spending import DynamicSpendingPolicy, FixedSpendingPolicy
from repro.core.taxation import NoTax, ProportionalRedistributionTax, ThresholdIncomeTax
from repro.overlay import scale_free_topology
from repro.p2psim import CreditMarketSimulator, MarketSimConfig, UtilizationMode

SEED = 21
NUM_PEERS = 150
AVERAGE_WEALTH = 100.0
HORIZON = 4000.0


def run_policy(label, topology, tax_policy=None, spending_policy=None):
    config = MarketSimConfig(
        num_peers=NUM_PEERS,
        initial_credits=AVERAGE_WEALTH,
        horizon=HORIZON,
        step=2.0,
        utilization=UtilizationMode.ASYMMETRIC,
        tax_policy=tax_policy or NoTax(),
        spending_policy=spending_policy or FixedSpendingPolicy(),
        sample_interval=100.0,
        seed=SEED,
    )
    result = CreditMarketSimulator.run_config(config, topology=topology.copy())
    bankrupt = float(np.mean(result.final_wealths < 1.0))
    print(f"{label:<42s}  gini={result.stabilized_gini:6.3f}  "
          f"bankrupt={bankrupt:6.3f}  transfers={result.total_transfers}")
    return result


def main() -> None:
    topology = scale_free_topology(NUM_PEERS, seed=SEED)
    print(f"Asymmetric credit market, N={NUM_PEERS}, c={AVERAGE_WEALTH:.0f}, "
          f"{HORIZON:.0f} simulated seconds\n")
    print(f"{'policy':<42s}  {'gini':>10s}  {'bankrupt':>13s}")

    run_policy("no counter-measure", topology)
    run_policy("tax 10% above wealth 50", topology,
               tax_policy=ThresholdIncomeTax(rate=0.1, threshold=50.0))
    run_policy("tax 20% above wealth 50", topology,
               tax_policy=ThresholdIncomeTax(rate=0.2, threshold=50.0))
    run_policy("tax 20% above wealth 80", topology,
               tax_policy=ThresholdIncomeTax(rate=0.2, threshold=80.0))
    run_policy("proportional redistribution tax (20%/80)", topology,
               tax_policy=ProportionalRedistributionTax(rate=0.2, threshold=80.0))
    run_policy("dynamic spending (m = c)", topology,
               spending_policy=DynamicSpendingPolicy(wealth_threshold=AVERAGE_WEALTH))
    run_policy("dynamic spending + tax 20%/80", topology,
               tax_policy=ThresholdIncomeTax(rate=0.2, threshold=80.0),
               spending_policy=DynamicSpendingPolicy(wealth_threshold=AVERAGE_WEALTH))

    print("\nThe paper's observations (Sec. VI-C/D): taxation inhibits skewness, a "
          "threshold near the average wealth works best, and dynamic spending "
          "rates mitigate condensation on their own.")


if __name__ == "__main__":
    main()
