"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed editable in fully offline environments that
lack the ``wheel`` package (``pip install -e . --no-build-isolation``
falls back to the legacy code path through this file).
"""

from setuptools import setup

setup()
